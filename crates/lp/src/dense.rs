//! Dense two-phase bounded-variable primal simplex — the original engine,
//! kept as the in-crate reference implementation.
//!
//! The production entry points ([`crate::solve_lp`]) route to the sparse
//! revised simplex in [`crate::revised`]; this module survives for two
//! reasons. First, `cargo bench` measures dense-vs-sparse on the same
//! FBB-shaped instances (`BENCH_lp.json`), so the claimed speedup is
//! reproducible against the exact code it replaced, not a strawman. Second,
//! it is a second full simplex inside the crate for tests to cross-check
//! (the *independent* oracle lives in `fbb-testkit`). Telemetry counters
//! are namespaced `lp_dense_simplex_*` so the production `lp_simplex_*`
//! series only ever means the sparse engine.

use std::time::Instant;

use crate::approx::{is_nonzero, is_zero};
use crate::deadline;
use crate::model::Sense;
use crate::simplex::{LpSolution, LpStatus, VarStatus, PIVOT_TOL, TOL};
use crate::{LpError, Model};

struct Tableau {
    m: usize,
    ntot: usize,
    /// Row-major `m x ntot` matrix `B^{-1} A`.
    t: Vec<f64>,
    /// Current values of the basic variables, row by row.
    b_hat: Vec<f64>,
    /// Column index of each row's basic variable.
    basis: Vec<usize>,
    status: Vec<VarStatus>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    iterations: usize,
    /// Telemetry tallies, accumulated in plain fields so the hot loop never
    /// touches the global sink; flushed once per solve by `Drop`.
    pivots: usize,
    bound_flips: usize,
    bland_activations: usize,
    bland_active: bool,
}

impl Drop for Tableau {
    /// Flushes the solve's aggregate counters to `fbb_telemetry`. Drop-based
    /// so every exit path of [`solve_lp_dense_with_bounds`] — optimal,
    /// infeasible, unbounded, deadline, iteration limit — reports exactly
    /// once.
    fn drop(&mut self) {
        if !fbb_telemetry::is_enabled() {
            return;
        }
        fbb_telemetry::counter("lp_dense_simplex_solves", 1);
        fbb_telemetry::counter("lp_dense_simplex_iterations", self.iterations as u64);
        fbb_telemetry::counter("lp_dense_simplex_pivots", self.pivots as u64);
        fbb_telemetry::counter("lp_dense_simplex_bound_flips", self.bound_flips as u64);
        fbb_telemetry::counter("lp_dense_simplex_bland_activations", self.bland_activations as u64);
    }
}

impl Tableau {
    #[inline]
    fn at(&self, row: usize, col: usize) -> f64 {
        self.t[row * self.ntot + col]
    }

    fn nonbasic_value(&self, col: usize) -> f64 {
        match self.status[col] {
            VarStatus::AtLower => self.lower[col],
            VarStatus::AtUpper => self.upper[col],
            VarStatus::Free => 0.0,
            VarStatus::Basic(row) => self.b_hat[row],
        }
    }

    /// Runs simplex iterations for cost vector `c` until optimality.
    /// Returns `Ok(false)` if the problem is unbounded under `c`,
    /// `Err(LpError::IterationLimit)` when the iteration budget is exhausted
    /// (numerical cycling), and `Err(LpError::DeadlineExceeded)` when the
    /// wall-clock deadline expires — each cause is its own variant so
    /// callers never have to guess which limit tripped.
    fn optimize(
        &mut self,
        c: &[f64],
        iter_limit: usize,
        deadline: Option<Instant>,
    ) -> Result<bool, LpError> {
        let mut stall = 0usize;
        loop {
            self.iterations += 1;
            if self.iterations > iter_limit {
                return Err(LpError::IterationLimit);
            }
            if let Some(d) = deadline {
                if (self.iterations == 1 || self.iterations.is_multiple_of(64))
                    && deadline::reached(d)
                {
                    return Err(LpError::DeadlineExceeded);
                }
            }
            let bland = stall > 64 + self.m;
            if bland && !self.bland_active {
                self.bland_activations += 1;
            }
            self.bland_active = bland;

            // Basic cost vector.
            let cb: Vec<f64> = self.basis.iter().map(|&j| c[j]).collect();
            let cb_nonzero = cb.iter().any(|&v| is_nonzero(v));

            // Pricing: find the entering column.
            let mut entering: Option<(usize, f64, f64)> = None; // (col, violation, dir)
            for (j, &cj) in c.iter().enumerate().take(self.ntot) {
                if matches!(self.status[j], VarStatus::Basic(_)) {
                    continue;
                }
                if self.lower[j] >= self.upper[j] - PIVOT_TOL
                    && self.lower[j].is_finite()
                    && self.upper[j].is_finite()
                {
                    continue; // fixed variable
                }
                let mut d = cj;
                if cb_nonzero {
                    for (i, &cbi) in cb.iter().enumerate() {
                        if is_nonzero(cbi) {
                            d -= cbi * self.at(i, j);
                        }
                    }
                }
                let (viol, dir) = match self.status[j] {
                    VarStatus::AtLower => (-d, 1.0),
                    VarStatus::AtUpper => (d, -1.0),
                    VarStatus::Free => (d.abs(), if d > 0.0 { -1.0 } else { 1.0 }),
                    VarStatus::Basic(_) => unreachable!(),
                };
                if viol > TOL {
                    if bland {
                        entering = Some((j, viol, dir));
                        break;
                    }
                    match entering {
                        Some((_, best, _)) if best >= viol => {}
                        _ => entering = Some((j, viol, dir)),
                    }
                }
            }

            let Some((e, _viol, dir)) = entering else {
                return Ok(true); // optimal for this cost vector
            };

            // Ratio test: entering moves by t >= 0 in direction `dir`;
            // basic i changes by -dir * T[i][e] * t.
            let mut t_best = if self.lower[e].is_finite() && self.upper[e].is_finite() {
                self.upper[e] - self.lower[e]
            } else {
                f64::INFINITY
            };
            let mut leave: Option<(usize, VarStatus)> = None;
            for i in 0..self.m {
                let coef = dir * self.at(i, e);
                let (ratio, hit) = if coef > PIVOT_TOL {
                    // basic decreases toward its lower bound
                    let lb = self.lower[self.basis[i]];
                    if !lb.is_finite() {
                        continue;
                    }
                    ((self.b_hat[i] - lb) / coef, VarStatus::AtLower)
                } else if coef < -PIVOT_TOL {
                    let ub = self.upper[self.basis[i]];
                    if !ub.is_finite() {
                        continue;
                    }
                    ((ub - self.b_hat[i]) / -coef, VarStatus::AtUpper)
                } else {
                    continue;
                };
                let ratio = ratio.max(0.0);
                if ratio < t_best - PIVOT_TOL
                    || (bland
                        && (ratio - t_best).abs() <= PIVOT_TOL
                        && leave.as_ref().is_some_and(|&(r, _)| self.basis[i] < self.basis[r]))
                {
                    t_best = ratio;
                    leave = Some((i, hit));
                }
            }

            if t_best.is_infinite() {
                return Ok(false); // unbounded ray
            }
            stall = if t_best > TOL { 0 } else { stall + 1 };

            match leave {
                None => {
                    // Bound flip: entering crosses to its opposite bound.
                    self.bound_flips += 1;
                    for i in 0..self.m {
                        let delta = dir * self.at(i, e) * t_best;
                        self.b_hat[i] -= delta;
                    }
                    self.status[e] = match self.status[e] {
                        VarStatus::AtLower => VarStatus::AtUpper,
                        VarStatus::AtUpper => VarStatus::AtLower,
                        other => other, // free vars cannot bound-flip (t is infinite)
                    };
                }
                Some((r, hit)) => {
                    self.pivots += 1;
                    let entering_value = self.nonbasic_value(e) + dir * t_best;
                    for i in 0..self.m {
                        if i != r {
                            self.b_hat[i] -= dir * self.at(i, e) * t_best;
                        }
                    }
                    self.b_hat[r] = entering_value;
                    self.status[self.basis[r]] = hit;
                    self.pivot(r, e);
                }
            }
        }
    }

    /// Row-reduces the tableau around `(row, col)` and installs `col` in the
    /// basis.
    fn pivot(&mut self, row: usize, col: usize) {
        let ntot = self.ntot;
        let piv = self.t[row * ntot + col];
        debug_assert!(piv.abs() > PIVOT_TOL, "pivot element too small");
        let inv = 1.0 / piv;
        for v in &mut self.t[row * ntot..(row + 1) * ntot] {
            *v *= inv;
        }
        for i in 0..self.m {
            if i == row {
                continue;
            }
            let factor = self.t[i * ntot + col];
            if is_zero(factor) {
                continue;
            }
            for j in 0..ntot {
                let pr = self.t[row * ntot + j];
                if is_nonzero(pr) {
                    self.t[i * ntot + j] -= factor * pr;
                }
            }
            self.t[i * ntot + col] = 0.0; // exact zero to limit drift
        }
        self.basis[row] = col;
        self.status[col] = VarStatus::Basic(row);
    }
}

/// Solves the LP relaxation of `model` with the dense reference engine.
///
/// # Errors
///
/// Returns the model's validation errors or [`LpError::IterationLimit`] on
/// numerical cycling.
pub fn solve_lp_dense(model: &Model) -> Result<LpSolution, LpError> {
    solve_lp_dense_with_bounds(model, None, None)
}

/// Like [`solve_lp_dense`] but with per-variable bound overrides and an
/// optional deadline — the dense twin of [`crate::solve_lp_with_bounds`].
///
/// # Errors
///
/// See [`solve_lp_dense`].
pub fn solve_lp_dense_with_bounds(
    model: &Model,
    bounds: Option<(&[f64], &[f64])>,
    deadline: Option<Instant>,
) -> Result<LpSolution, LpError> {
    let _lp_span = fbb_telemetry::span("lp_dense_solve");
    model.validate()?;
    let n = model.vars.len();
    let m = model.constraints.len();

    let (var_lower, var_upper): (Vec<f64>, Vec<f64>) = match bounds {
        Some((lo, up)) => (lo.to_vec(), up.to_vec()),
        None => (
            model.vars.iter().map(|v| v.lower).collect(),
            model.vars.iter().map(|v| v.upper).collect(),
        ),
    };
    for (&lo, &up) in var_lower.iter().zip(&var_upper) {
        if lo > up {
            // Branching can produce empty boxes; report infeasible.
            return Ok(LpSolution { status: LpStatus::Infeasible, x: vec![], objective: 0.0 });
        }
    }

    // Columns: [structurals | slacks | artificials].
    let ntot = n + 2 * m;
    let mut lower = vec![0.0; ntot];
    let mut upper = vec![0.0; ntot];
    lower[..n].copy_from_slice(&var_lower);
    upper[..n].copy_from_slice(&var_upper);
    for (k, c) in model.constraints.iter().enumerate() {
        let (lo, up) = match c.sense {
            Sense::Le => (0.0, f64::INFINITY),
            Sense::Ge => (f64::NEG_INFINITY, 0.0),
            Sense::Eq => (0.0, 0.0),
        };
        lower[n + k] = lo;
        upper[n + k] = up;
        lower[n + m + k] = 0.0;
        upper[n + m + k] = f64::INFINITY;
    }

    let mut status = Vec::with_capacity(ntot);
    for j in 0..n {
        status.push(if lower[j].is_finite() {
            VarStatus::AtLower
        } else if upper[j].is_finite() {
            VarStatus::AtUpper
        } else {
            VarStatus::Free
        });
    }
    for k in 0..m {
        // Slacks start at 0, which is a bound for every sense.
        status.push(match model.constraints[k].sense {
            Sense::Le | Sense::Eq => VarStatus::AtLower,
            Sense::Ge => VarStatus::AtUpper,
        });
    }
    // Artificial statuses are installed as basic below.
    for _ in 0..m {
        status.push(VarStatus::AtLower);
    }

    // Residuals with structurals at their starting values, slacks at 0.
    let start_value = |j: usize| -> f64 {
        match status[j] {
            VarStatus::AtLower => lower[j],
            VarStatus::AtUpper => upper[j],
            _ => 0.0,
        }
    };
    let mut residual = vec![0.0; m];
    for (k, c) in model.constraints.iter().enumerate() {
        let mut r = c.rhs;
        for &(v, coef) in &c.terms {
            r -= coef * start_value(v);
        }
        residual[k] = r;
    }

    // Dense tableau rows: sign(residual) * [A | I_slack | I_art].
    let mut t = vec![0.0; m * ntot];
    let mut b_hat = vec![0.0; m];
    let mut basis = vec![0usize; m];
    for (k, c) in model.constraints.iter().enumerate() {
        let sign = if residual[k] >= 0.0 { 1.0 } else { -1.0 };
        for &(v, coef) in &c.terms {
            t[k * ntot + v] = sign * coef;
        }
        t[k * ntot + n + k] = sign; // slack
        t[k * ntot + n + m + k] = 1.0; // artificial: sign * sign = 1
        b_hat[k] = residual[k].abs();
        basis[k] = n + m + k;
        status[n + m + k] = VarStatus::Basic(k);
    }

    let mut tab = Tableau {
        m,
        ntot,
        t,
        b_hat,
        basis,
        status,
        lower,
        upper,
        iterations: 0,
        pivots: 0,
        bound_flips: 0,
        bland_activations: 0,
        bland_active: false,
    };
    #[allow(unused_mut)]
    let mut iter_limit = 50_000 + 40 * (n + m);
    #[cfg(feature = "fault-inject")]
    if let Some(forced) = crate::fault::iteration_limit_override() {
        iter_limit = forced;
    }

    // Phase 1: minimize the artificial sum.
    let mut c1 = vec![0.0; ntot];
    c1[n + m..].fill(1.0);
    let bounded = match tab.optimize(&c1, iter_limit, deadline) {
        Ok(b) => b,
        // A deadline expiry is a caller-requested abort, reported in-band as
        // a status; iteration-limit exhaustion stays a hard error so numerical
        // cycling is never mistaken for a clean timeout.
        Err(LpError::DeadlineExceeded) => {
            return Ok(LpSolution { status: LpStatus::DeadlineExceeded, x: vec![], objective: 0.0 });
        }
        Err(e) => return Err(e),
    };
    debug_assert!(bounded, "phase 1 objective is bounded below by 0");
    let artificial_sum: f64 =
        (0..m).filter(|&i| tab.basis[i] >= n + m).map(|i| tab.b_hat[i]).sum();
    if artificial_sum > 1e-6 {
        return Ok(LpSolution { status: LpStatus::Infeasible, x: vec![], objective: 0.0 });
    }

    // Drive any residual basic artificials out of the basis (degenerate
    // pivots), then freeze all artificials at zero.
    for r in 0..m {
        if tab.basis[r] >= n + m {
            if let Some(col) = (0..n + m).find(|&j| {
                !matches!(tab.status[j], VarStatus::Basic(_)) && tab.at(r, j).abs() > 1e-6
            }) {
                let entering_value = tab.nonbasic_value(col);
                tab.status[tab.basis[r]] = VarStatus::AtLower;
                tab.b_hat[r] = entering_value;
                tab.pivot(r, col);
            }
            // Otherwise the row is redundant; the artificial stays basic at 0
            // and its [0,0] bounds keep it there.
        }
    }
    for j in n + m..ntot {
        tab.lower[j] = 0.0;
        tab.upper[j] = 0.0;
    }

    // Phase 2: the real objective.
    let mut c2 = vec![0.0; ntot];
    for (j, v) in model.vars.iter().enumerate() {
        c2[j] = v.objective;
    }
    // Planted defect for the differential harness: pricing with the negated
    // cost vector negates every phase-2 reduced cost, so the simplex pivots
    // in the wrong direction and reports an anti-optimal vertex as Optimal.
    // The final `objective` is still evaluated against the true model costs,
    // which is what lets an independent oracle expose the lie.
    #[cfg(feature = "fault-inject")]
    if crate::fault::flip_pivot_sign() {
        for v in &mut c2 {
            *v = -*v;
        }
    }
    let bounded = match tab.optimize(&c2, iter_limit, deadline) {
        Ok(b) => b,
        Err(LpError::DeadlineExceeded) => {
            return Ok(LpSolution { status: LpStatus::DeadlineExceeded, x: vec![], objective: 0.0 });
        }
        Err(e) => return Err(e),
    };
    if !bounded {
        return Ok(LpSolution { status: LpStatus::Unbounded, x: vec![], objective: 0.0 });
    }

    let mut x = vec![0.0; n];
    for (j, xj) in x.iter_mut().enumerate() {
        *xj = tab.nonbasic_value(j);
        // Clamp basic values onto their box to shed numerical dust.
        *xj = xj.clamp(var_lower[j], var_upper[j]);
    }
    let objective = model.objective_value(&x);
    Ok(LpSolution { status: LpStatus::Optimal, x, objective })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sense;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn textbook_le_problem() {
        // min -(3x + 5y) s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 => x=2, y=6.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, -3.0);
        let y = m.add_continuous(0.0, f64::INFINITY, -5.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Le, 4.0).unwrap();
        m.add_constraint(vec![(y, 2.0)], Sense::Le, 12.0).unwrap();
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0).unwrap();
        let s = solve_lp_dense(&m).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -36.0);
    }

    #[test]
    fn infeasible_and_unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 2.0).unwrap();
        assert_eq!(solve_lp_dense(&m).unwrap().status, LpStatus::Infeasible);

        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, -1.0);
        m.add_constraint(vec![(x, -1.0)], Sense::Le, 0.0).unwrap();
        assert_eq!(solve_lp_dense(&m).unwrap().status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_rows() {
        // min x s.t. -x <= -3 (i.e. x >= 3), x <= 10.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, -1.0)], Sense::Le, -3.0).unwrap();
        let s = solve_lp_dense(&m).unwrap();
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn expired_deadline_aborts_cleanly() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 1.0).unwrap();
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let s = solve_lp_dense_with_bounds(&m, None, Some(past)).unwrap();
        assert_eq!(s.status, LpStatus::DeadlineExceeded);
    }

    #[test]
    fn dense_and_sparse_engines_agree_on_a_mixed_model() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, 1.0);
        let y = m.add_continuous(0.0, f64::INFINITY, 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Eq, 10.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Sense::Ge, 2.0).unwrap();
        let dense = solve_lp_dense(&m).unwrap();
        let sparse = crate::solve_lp(&m).unwrap();
        assert_eq!(dense.status, sparse.status);
        assert_close(dense.objective, sparse.objective);
    }
}
