//! Layer-2 model auditor: presolve-style static checks on a [`Model`].
//!
//! [`Model::audit`] inspects a model *without solving it* and reports
//! structural defects the solver would otherwise only surface as a
//! confusing `Infeasible`/`Unbounded` verdict deep in phase 1 — or worse,
//! silently grind through. The split:
//!
//! * **errors** — the model is statically broken: a row no point can
//!   satisfy given the variable bounds, invalid bounds, a free column that
//!   makes the objective unbounded. Solving cannot succeed.
//! * **warnings** — the model solves but is suspicious: vacuous or
//!   duplicate rows, columns no row touches, fixed columns, coefficient
//!   dynamic range beyond `1e8` (the dense tableau's reliable precision).
//!
//! `solve_lp`/`solve_mip` run the audit automatically when telemetry is
//! enabled and publish `audit_model_*` counters; they never change the
//! solve result — the audit observes, the solver decides. Generators (the
//! FBB ILP builder in `fbb-core`) call [`Model::audit`] directly and can
//! fail fast on `errors`.

use std::collections::HashMap;

use crate::model::Sense;
use crate::Model;

/// How bad a defect is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The model cannot be solved meaningfully.
    Error,
    /// The model solves, but something is off.
    Warning,
}

/// One defect found by [`Model::audit`].
#[derive(Debug, Clone)]
pub struct ModelDefect {
    /// Defect class.
    pub severity: Severity,
    /// Stable machine-readable code (`empty_row`, `bound_infeasible_row`, …).
    pub code: &'static str,
    /// Row index for row defects, column index for column defects.
    pub index: usize,
    /// Human-readable description.
    pub message: String,
}

/// Everything [`Model::audit`] found, in deterministic order.
#[derive(Debug, Clone, Default)]
pub struct ModelAudit {
    /// All defects, errors first, then by code and index.
    pub defects: Vec<ModelDefect>,
}

/// Coefficient magnitudes spanning more than this ratio get flagged: the
/// simplex tolerances (`1e-7`/`1e-9`) stop being meaningful when row
/// coefficients differ by more than ~8 orders of magnitude.
pub const DYNAMIC_RANGE_LIMIT: f64 = 1e8;

/// Feasibility slack used when comparing row activity bounds against the
/// rhs; matches the solver's feasibility tolerance.
const TOL: f64 = 1e-7;

impl ModelAudit {
    /// Defects that make the model unsolvable.
    pub fn errors(&self) -> impl Iterator<Item = &ModelDefect> {
        self.defects.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Defects the model survives.
    pub fn warnings(&self) -> impl Iterator<Item = &ModelDefect> {
        self.defects.iter().filter(|d| d.severity == Severity::Warning)
    }

    /// No errors (warnings allowed).
    pub fn is_sound(&self) -> bool {
        self.errors().next().is_none()
    }

    /// No defects at all.
    pub fn is_clean(&self) -> bool {
        self.defects.is_empty()
    }

    /// Publishes `audit_model_*` telemetry counters for this audit.
    pub fn emit_telemetry(&self) {
        fbb_telemetry::counter("audit_model_runs", 1);
        fbb_telemetry::counter("audit_model_errors", self.errors().count() as u64);
        fbb_telemetry::counter("audit_model_warnings", self.warnings().count() as u64);
        for d in &self.defects {
            fbb_telemetry::counter(defect_counter(d.code), 1);
        }
    }

    /// One line per defect, errors first.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for d in &self.defects {
            let tag = match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            s.push_str(&format!("{tag}[{}] #{}: {}\n", d.code, d.index, d.message));
        }
        s
    }

    fn push(&mut self, severity: Severity, code: &'static str, index: usize, message: String) {
        self.defects.push(ModelDefect { severity, code, index, message });
    }

    fn finish(mut self) -> Self {
        self.defects.sort_by_key(|d| {
            (match d.severity {
                Severity::Error => 0u8,
                Severity::Warning => 1,
            }, d.code, d.index)
        });
        self
    }
}

/// `[min, max]` of `Σ aᵢxᵢ` over the variable boxes; infinite bounds
/// propagate as infinities.
fn activity_range(model: &Model, terms: &[(usize, f64)]) -> (f64, f64) {
    let mut lo = 0.0;
    let mut hi = 0.0;
    for &(v, a) in terms {
        let (vl, vu) = (model.vars[v].lower, model.vars[v].upper);
        if a > 0.0 {
            lo += a * vl;
            hi += a * vu;
        } else if a < 0.0 {
            lo += a * vu;
            hi += a * vl;
        }
    }
    (lo, hi)
}

impl Model {
    /// Audits the model for structural defects. See the [module docs]
    /// (self) for the error/warning split. Deterministic: same model, same
    /// defect list.
    #[must_use]
    pub fn audit(&self) -> ModelAudit {
        let mut audit = ModelAudit::default();
        self.audit_columns(&mut audit);
        self.audit_rows(&mut audit);
        self.audit_dynamic_range(&mut audit);
        audit.finish()
    }

    fn audit_columns(&self, audit: &mut ModelAudit) {
        let mut referenced = vec![false; self.vars.len()];
        for c in &self.constraints {
            for &(v, a) in &c.terms {
                // A zero coefficient does not couple the variable to the row.
                if crate::approx::is_nonzero(a) {
                    referenced[v] = true;
                }
            }
        }
        for (j, v) in self.vars.iter().enumerate() {
            if v.lower.is_nan() || v.upper.is_nan() || !v.objective.is_finite() {
                audit.push(
                    Severity::Error,
                    "invalid_column",
                    j,
                    format!(
                        "column {j} has non-finite data (bounds [{}, {}], objective {})",
                        v.lower, v.upper, v.objective
                    ),
                );
                continue;
            }
            if v.lower > v.upper {
                audit.push(
                    Severity::Error,
                    "inverted_bounds",
                    j,
                    format!("column {j} bounds are inverted: [{}, {}]", v.lower, v.upper),
                );
                continue;
            }
            if !referenced[j] {
                let unbounded = (v.objective < 0.0 && v.upper == f64::INFINITY)
                    || (v.objective > 0.0 && v.lower == f64::NEG_INFINITY);
                if unbounded {
                    audit.push(
                        Severity::Error,
                        "unbounded_free_column",
                        j,
                        format!(
                            "column {j} appears in no row and its objective {} can decrease \
                             without limit",
                            v.objective
                        ),
                    );
                } else {
                    audit.push(
                        Severity::Warning,
                        "free_column",
                        j,
                        format!("column {j} appears in no constraint row"),
                    );
                }
            } else if crate::approx::near(v.lower, v.upper, 0.0) {
                audit.push(
                    Severity::Warning,
                    "fixed_column",
                    j,
                    format!("column {j} is fixed at {} by its bounds", v.lower),
                );
            }
        }
    }

    fn audit_rows(&self, audit: &mut ModelAudit) {
        // Duplicate detection keys on the exact (terms, sense, rhs) bits;
        // rows that differ only in term order were already canonicalized by
        // `add_constraint` when they contained duplicates, so sort a copy.
        type RowKey = (u8, u64, Vec<(usize, u64)>);
        let mut seen: HashMap<RowKey, usize> = HashMap::new();
        for (i, c) in self.constraints.iter().enumerate() {
            let live: Vec<(usize, f64)> = c
                .terms
                .iter()
                .copied()
                .filter(|&(_, a)| crate::approx::is_nonzero(a))
                .collect();
            if live.is_empty() {
                let violated = match c.sense {
                    Sense::Le => 0.0 > c.rhs + TOL,
                    Sense::Ge => 0.0 < c.rhs - TOL,
                    Sense::Eq => c.rhs.abs() > TOL,
                };
                if violated {
                    audit.push(
                        Severity::Error,
                        "empty_row_infeasible",
                        i,
                        format!(
                            "row {i} has no nonzero coefficients but requires {} {}",
                            sense_str(c.sense),
                            c.rhs
                        ),
                    );
                } else {
                    audit.push(
                        Severity::Warning,
                        "empty_row",
                        i,
                        format!("row {i} has no nonzero coefficients (vacuously satisfied)"),
                    );
                }
                continue;
            }

            let mut key_terms: Vec<(usize, u64)> =
                live.iter().map(|&(v, a)| (v, a.to_bits())).collect();
            key_terms.sort_unstable();
            match seen.entry((c.sense as u8, c.rhs.to_bits(), key_terms)) {
                std::collections::hash_map::Entry::Occupied(first) => {
                    audit.push(
                        Severity::Warning,
                        "duplicate_row",
                        i,
                        format!("row {i} duplicates row {}", first.get()),
                    );
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(i);
                }
            }

            let (lo, hi) = activity_range(self, &live);
            let infeasible = match c.sense {
                Sense::Le => lo > c.rhs + TOL,
                Sense::Ge => hi < c.rhs - TOL,
                Sense::Eq => lo > c.rhs + TOL || hi < c.rhs - TOL,
            };
            if infeasible {
                audit.push(
                    Severity::Error,
                    "bound_infeasible_row",
                    i,
                    format!(
                        "row {i} activity range [{lo}, {hi}] cannot satisfy {} {}",
                        sense_str(c.sense),
                        c.rhs
                    ),
                );
                continue;
            }
            let forced = match c.sense {
                Sense::Le => hi <= c.rhs + TOL,
                Sense::Ge => lo >= c.rhs - TOL,
                // An Eq row is only redundant when the boxes pin it exactly.
                Sense::Eq => lo >= c.rhs - TOL && hi <= c.rhs + TOL,
            };
            if forced {
                audit.push(
                    Severity::Warning,
                    "redundant_row",
                    i,
                    format!(
                        "row {i} is satisfied by every point in the variable boxes \
                         (activity range [{lo}, {hi}], requirement {} {})",
                        sense_str(c.sense),
                        c.rhs
                    ),
                );
            }
        }
    }

    fn audit_dynamic_range(&self, audit: &mut ModelAudit) {
        let mut min_mag = f64::INFINITY;
        let mut max_mag = 0.0f64;
        let mut min_at = 0;
        let mut max_at = 0;
        for (i, c) in self.constraints.iter().enumerate() {
            for &(_, a) in &c.terms {
                let mag = a.abs();
                if crate::approx::is_zero(mag) {
                    continue;
                }
                if mag < min_mag {
                    min_mag = mag;
                    min_at = i;
                }
                if mag > max_mag {
                    max_mag = mag;
                    max_at = i;
                }
            }
        }
        if max_mag > 0.0 && min_mag.is_finite() && max_mag / min_mag > DYNAMIC_RANGE_LIMIT {
            audit.push(
                Severity::Warning,
                "dynamic_range",
                max_at,
                format!(
                    "coefficient magnitudes span [{min_mag:e}, {max_mag:e}] \
                     (rows {min_at} and {max_at}): ratio exceeds {DYNAMIC_RANGE_LIMIT:e} \
                     and will erode simplex tolerances"
                ),
            );
        }
    }
}

/// Per-code counter name (telemetry counters are `&'static str`-keyed, so
/// the mapping is a static table rather than string concatenation).
fn defect_counter(code: &str) -> &'static str {
    match code {
        "invalid_column" => "audit_defect_invalid_column",
        "inverted_bounds" => "audit_defect_inverted_bounds",
        "unbounded_free_column" => "audit_defect_unbounded_free_column",
        "free_column" => "audit_defect_free_column",
        "fixed_column" => "audit_defect_fixed_column",
        "empty_row" => "audit_defect_empty_row",
        "empty_row_infeasible" => "audit_defect_empty_row_infeasible",
        "duplicate_row" => "audit_defect_duplicate_row",
        "bound_infeasible_row" => "audit_defect_bound_infeasible_row",
        "redundant_row" => "audit_defect_redundant_row",
        "dynamic_range" => "audit_defect_dynamic_range",
        _ => "audit_defect_other",
    }
}

fn sense_str(sense: Sense) -> &'static str {
    match sense {
        Sense::Le => "<=",
        Sense::Eq => "=",
        Sense::Ge => ">=",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(audit: &ModelAudit) -> Vec<&'static str> {
        audit.defects.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_model_audits_clean() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0, 1.0);
        let y = m.add_continuous(0.0, 10.0, 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 3.0).unwrap();
        let audit = m.audit();
        assert!(audit.is_clean(), "{}", audit.summary());
    }

    #[test]
    fn empty_row_severity_depends_on_rhs() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Le, 0.5).unwrap();
        m.add_constraint(vec![], Sense::Le, 0.0).unwrap(); // 0 <= 0: vacuous
        m.add_constraint(vec![], Sense::Ge, 2.0).unwrap(); // 0 >= 2: impossible
        m.add_constraint(vec![(x, 0.0)], Sense::Eq, 1.0).unwrap(); // 0 = 1: impossible
        let audit = m.audit();
        assert_eq!(codes(&audit), vec!["empty_row_infeasible", "empty_row_infeasible", "empty_row"]);
        assert!(!audit.is_sound());
    }

    #[test]
    fn duplicate_rows_warn_but_stay_sound() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 5.0, 1.0);
        let y = m.add_continuous(0.0, 5.0, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 2.0)], Sense::Le, 4.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 2.0)], Sense::Le, 4.0).unwrap();
        // Same terms, different rhs: not a duplicate.
        m.add_constraint(vec![(x, 1.0), (y, 2.0)], Sense::Le, 5.0).unwrap();
        let audit = m.audit();
        assert_eq!(codes(&audit), vec!["duplicate_row"]);
        assert_eq!(audit.defects[0].index, 1);
        assert!(audit.is_sound());
    }

    #[test]
    fn bound_infeasible_row_is_an_error() {
        let mut m = Model::new();
        let x = m.add_binary(1.0);
        let y = m.add_binary(1.0);
        // x + y >= 3 with x,y in [0,1]: max activity is 2.
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 3.0).unwrap();
        let audit = m.audit();
        assert_eq!(codes(&audit), vec!["bound_infeasible_row"]);
        assert!(!audit.is_sound());
    }

    #[test]
    fn redundant_row_is_a_warning() {
        let mut m = Model::new();
        let x = m.add_binary(1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Le, 2.0).unwrap(); // x <= 2 always holds
        let audit = m.audit();
        assert_eq!(codes(&audit), vec!["redundant_row"]);
        assert!(audit.is_sound());
    }

    #[test]
    fn free_and_fixed_columns_are_flagged() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0, 1.0);
        let free = m.add_continuous(0.0, 1.0, 0.0);
        let fixed = m.add_continuous(2.0, 2.0, 1.0);
        m.add_constraint(vec![(x, 1.0), (fixed, 1.0)], Sense::Le, 2.5).unwrap();
        let audit = m.audit();
        assert_eq!(codes(&audit), vec!["fixed_column", "free_column"]);
        assert_eq!(audit.defects.iter().map(|d| d.index).collect::<Vec<_>>(), vec![fixed, free]);
        assert!(audit.is_sound());
    }

    #[test]
    fn unreferenced_column_that_unbounds_the_objective_is_an_error() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, -1.0);
        let y = m.add_continuous(0.0, 1.0, 1.0);
        m.add_constraint(vec![(y, 1.0)], Sense::Ge, 1.0).unwrap();
        let audit = m.audit();
        assert!(codes(&audit).contains(&"unbounded_free_column"));
        assert_eq!(audit.errors().next().map(|d| d.index), Some(x));
    }

    #[test]
    fn inverted_bounds_are_an_error() {
        let mut m = Model::new();
        m.add_continuous(3.0, 1.0, 0.0);
        let audit = m.audit();
        assert_eq!(codes(&audit), vec!["inverted_bounds"]);
    }

    #[test]
    fn wide_dynamic_range_warns() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0, 1.0);
        let y = m.add_continuous(0.0, 1.0, 1.0);
        m.add_constraint(vec![(x, 1e-6)], Sense::Le, 1.0).unwrap();
        m.add_constraint(vec![(y, 1e6)], Sense::Le, 1.0).unwrap();
        let audit = m.audit();
        assert!(codes(&audit).contains(&"dynamic_range"), "{}", audit.summary());
    }

    #[test]
    fn zero_coefficient_rows_do_not_hide_infeasibility() {
        let mut m = Model::new();
        let x = m.add_binary(1.0);
        // The zero term is dead weight; the live part (0 >= 1) is impossible,
        // and the zero coefficient also leaves `x` effectively unreferenced.
        m.add_constraint(vec![(x, 0.0)], Sense::Ge, 1.0).unwrap();
        let audit = m.audit();
        assert_eq!(codes(&audit), vec!["empty_row_infeasible", "free_column"]);
    }
}
