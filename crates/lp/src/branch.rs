//! Pseudocost branching state (DESIGN.md §5j).
//!
//! A pseudocost is the observed per-unit objective degradation of pushing a
//! fractional variable up (to `ceil`) or down (to `floor`), averaged over
//! the branches actually taken. Once a variable has been branched on in
//! both directions its pseudocosts predict the bound movement of a new
//! branch without solving anything; until then the tree either falls back
//! to the global average pseudocost or — on the first few nodes — runs
//! *strong-branch probes*: actually dual-simplex-warm-starting the two
//! child relaxations of each candidate from the parent basis and scoring
//! the real degradations. The probes both pick the first branches and seed
//! the pseudocost table with real observations.
//!
//! Scoring uses the standard product rule
//! `score = max(up, ε) · max(down, ε)`, which prefers variables that move
//! the bound in *both* children (a variable with one huge and one zero
//! degradation mostly re-discovers the same child). Branching-priority
//! classes still dominate: candidates are drawn only from the highest
//! priority class with a fractional variable, matching the
//! most-fractional rule this module replaces.

/// Per-variable pseudocost accumulators for one branch & bound tree.
#[derive(Debug)]
pub(crate) struct Pseudocosts {
    /// Summed per-unit degradation of up-branches, per variable.
    up_sum: Vec<f64>,
    /// Number of observed up-branches, per variable.
    up_count: Vec<u32>,
    /// Summed per-unit degradation of down-branches, per variable.
    down_sum: Vec<f64>,
    /// Number of observed down-branches, per variable.
    down_count: Vec<u32>,
}

/// Floor for a degradation estimate in the product rule: keeps a zero
/// observed movement from zeroing the whole score.
const EPSILON: f64 = 1e-6;

impl Pseudocosts {
    pub(crate) fn new(vars: usize) -> Self {
        Pseudocosts {
            up_sum: vec![0.0; vars],
            up_count: vec![0; vars],
            down_sum: vec![0.0; vars],
            down_count: vec![0; vars],
        }
    }

    /// Records one observed branch: variable `var` was pushed `up` (or
    /// down) across a fractional distance `dist`, and the child relaxation
    /// bound degraded by `degradation` (clamped at 0: a child bound can
    /// never genuinely improve on its parent's).
    pub(crate) fn observe(&mut self, var: usize, up: bool, dist: f64, degradation: f64) {
        if !dist.is_finite() || dist <= EPSILON || !degradation.is_finite() {
            return;
        }
        let per_unit = degradation.max(0.0) / dist;
        if up {
            self.up_sum[var] += per_unit;
            self.up_count[var] += 1;
        } else {
            self.down_sum[var] += per_unit;
            self.down_count[var] += 1;
        }
    }

    /// Whether `var` has observations in both directions.
    pub(crate) fn reliable(&self, var: usize) -> bool {
        self.up_count[var] > 0 && self.down_count[var] > 0
    }

    /// Product-rule score of branching on `var` at fractional value `frac`
    /// (`frac ∈ (0,1)` is the distance to `floor`). Directions without
    /// observations for `var` fall back to the global average pseudocost
    /// of that direction, or 1.0 when the whole tree has no observations
    /// yet — which degrades the rule to most-fractional.
    pub(crate) fn score(&self, var: usize, frac: f64) -> f64 {
        let down = self.estimate(var, false) * frac;
        let up = self.estimate(var, true) * (1.0 - frac);
        down.max(EPSILON) * up.max(EPSILON)
    }

    fn estimate(&self, var: usize, up: bool) -> f64 {
        let (sum, count, all_sum, all_count) = if up {
            (self.up_sum[var], self.up_count[var], &self.up_sum, &self.up_count)
        } else {
            (self.down_sum[var], self.down_count[var], &self.down_sum, &self.down_count)
        };
        if count > 0 {
            return sum / f64::from(count);
        }
        let total: u32 = all_count.iter().sum();
        if total > 0 {
            all_sum.iter().sum::<f64>() / f64::from(total)
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unobserved_table_degrades_to_most_fractional() {
        let pc = Pseudocosts::new(3);
        // score = frac * (1 - frac): maximized at 0.5.
        assert!(pc.score(0, 0.5) > pc.score(1, 0.1));
        assert!(pc.score(0, 0.5) > pc.score(2, 0.9));
        assert!(!pc.reliable(0));
    }

    #[test]
    fn observations_steer_the_score() {
        let mut pc = Pseudocosts::new(2);
        // Variable 0 moves the bound hard both ways; variable 1 barely.
        pc.observe(0, true, 0.5, 10.0);
        pc.observe(0, false, 0.5, 8.0);
        pc.observe(1, true, 0.5, 0.1);
        pc.observe(1, false, 0.5, 0.1);
        assert!(pc.reliable(0) && pc.reliable(1));
        assert!(pc.score(0, 0.5) > pc.score(1, 0.5));
    }

    #[test]
    fn averages_accumulate_per_unit() {
        let mut pc = Pseudocosts::new(1);
        pc.observe(0, true, 0.25, 1.0); // 4.0 per unit
        pc.observe(0, true, 0.5, 1.0); // 2.0 per unit
        pc.observe(0, false, 0.5, 3.0); // 6.0 per unit
        // up estimate 3.0, down estimate 6.0; frac 0.5 halves both.
        let score = pc.score(0, 0.5);
        assert!((score - 3.0 * 0.5 * 6.0f64.mul_add(0.5, 0.0)).abs() < 1e-9);
    }

    #[test]
    fn one_sided_observations_borrow_the_global_average() {
        let mut pc = Pseudocosts::new(2);
        pc.observe(0, true, 0.5, 4.0); // global up average: 8.0 per unit
        assert!(!pc.reliable(0));
        // Variable 1 has no up observations: borrows 8.0; its down side
        // borrows... nothing exists, so 1.0.
        let s = pc.score(1, 0.5);
        assert!((s - (1.0 * 0.5) * (8.0 * 0.5)).abs() < 1e-9);
    }

    #[test]
    fn degenerate_observations_are_ignored() {
        let mut pc = Pseudocosts::new(1);
        pc.observe(0, true, 0.0, 5.0); // zero distance
        pc.observe(0, true, 0.5, f64::INFINITY); // unbounded degradation
        pc.observe(0, false, 0.5, -3.0); // "improvement" clamps to 0
        assert_eq!(pc.up_count[0], 0);
        assert_eq!(pc.down_count[0], 1);
        assert!(pc.down_sum[0].abs() < 1e-12);
    }
}
