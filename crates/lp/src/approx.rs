//! Approved floating-point comparison helpers.
//!
//! This module is the only place in the `fbb-lp`/`fbb-sta` solver paths
//! allowed to compare floats with `==`/`!=` (enforced by the `fbb-audit`
//! FA001 rule). Centralizing the comparisons makes every exact-equality
//! site greppable and keeps the intent — *exact* sparsity tests vs
//! *tolerant* numerical tests — explicit at the call site.

/// Exact-zero test, used for sparsity decisions (skip a column, drop an
/// eta entry). Exactness is intentional: a value is either stored as a
/// structural zero or it is not; a tolerance here would silently change
/// fill-in, not accuracy.
#[inline]
#[must_use]
pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

/// Negation of [`is_zero`]; the common guard before scatter/axpy work.
#[inline]
#[must_use]
pub fn is_nonzero(x: f64) -> bool {
    x != 0.0
}

/// Tolerant equality: `|a - b| <= tol`. For numerical comparisons where a
/// drifted value should still count as equal. `NaN` never compares near.
#[inline]
#[must_use]
pub fn near(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_tests_are_exact() {
        assert!(is_zero(0.0));
        assert!(is_zero(-0.0));
        assert!(!is_zero(1e-300));
        assert!(is_nonzero(f64::MIN_POSITIVE));
        assert!(is_nonzero(f64::NAN)); // NaN != 0.0 — callers treat it as "must process"
    }

    #[test]
    fn near_uses_absolute_tolerance() {
        assert!(near(1.0, 1.0 + 1e-10, 1e-9));
        assert!(!near(1.0, 1.1, 1e-9));
        assert!(!near(f64::NAN, f64::NAN, 1e-9));
    }
}
