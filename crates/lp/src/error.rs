//! Solver error type.

use std::error::Error;
use std::fmt;

/// Errors produced while building or solving a model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LpError {
    /// A constraint or objective references a variable that does not exist.
    UnknownVariable(usize),
    /// A coefficient, bound, or right-hand side is NaN/infinite where a
    /// finite value is required.
    NonFiniteData(String),
    /// A variable's lower bound exceeds its upper bound.
    InvertedBounds {
        /// Variable index.
        var: usize,
        /// Lower bound.
        lower: f64,
        /// Upper bound.
        upper: f64,
    },
    /// The simplex iteration limit was exhausted (numerical trouble).
    IterationLimit,
    /// The wall-clock deadline expired mid-solve. Distinct from
    /// [`LpError::IterationLimit`]: a deadline expiry is an expected,
    /// caller-requested abort (surfaced as
    /// `LpStatus::DeadlineExceeded`), not a numerical failure.
    DeadlineExceeded,
    /// The basis factorization broke down and could not be rebuilt — a
    /// numerical failure, like [`LpError::IterationLimit`], that should
    /// never occur on well-scaled inputs.
    NumericallySingular,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::UnknownVariable(v) => write!(f, "unknown variable index {v}"),
            LpError::NonFiniteData(what) => write!(f, "non-finite {what}"),
            LpError::InvertedBounds { var, lower, upper } => {
                write!(f, "variable {var} has lower bound {lower} above upper bound {upper}")
            }
            LpError::IterationLimit => write!(f, "simplex iteration limit exhausted"),
            LpError::DeadlineExceeded => write!(f, "wall-clock deadline expired mid-solve"),
            LpError::NumericallySingular => {
                write!(f, "basis factorization is numerically singular")
            }
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(LpError::UnknownVariable(3).to_string().contains('3'));
        assert!(LpError::IterationLimit.to_string().contains("iteration"));
        assert!(LpError::DeadlineExceeded.to_string().contains("deadline"));
    }

    #[test]
    fn deadline_and_iteration_limit_are_distinct() {
        assert_ne!(LpError::DeadlineExceeded, LpError::IterationLimit);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LpError>();
    }
}
