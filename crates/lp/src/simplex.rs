//! Public LP entry points, backed by the sparse revised simplex.
//!
//! [`solve_lp`]/[`solve_lp_with_bounds`] construct a
//! [`crate::revised::SparseEngine`] per call and run a cold two-phase
//! solve; branch-and-bound holds one engine for the whole tree and uses
//! the warm-start path directly. The previous dense tableau engine lives
//! on in [`crate::dense`] as the benchmark/reference twin. Shared solver
//! vocabulary — statuses, tolerances — is defined here so both engines
//! agree on it by construction.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::revised::SparseEngine;
use crate::{LpError, Model};

/// Outcome class of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// No point satisfies the constraints and bounds.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The wall-clock deadline expired mid-solve (see the `deadline`
    /// parameter of [`solve_lp_with_bounds`]).
    DeadlineExceeded,
}

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpSolution {
    /// Solve outcome. `x`/`objective` are meaningful only for
    /// [`LpStatus::Optimal`].
    pub status: LpStatus,
    /// Optimal point (one entry per model variable).
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
}

/// Optimality tolerance on reduced costs and bound violations.
pub(crate) const TOL: f64 = 1e-7;
/// Minimum usable pivot magnitude.
pub(crate) const PIVOT_TOL: f64 = 1e-9;

/// Where a column currently sits: in the basis (at some row/position) or
/// resting at one of its bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum VarStatus {
    /// Basic, at the given basis position.
    Basic(usize),
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Free variable resting at 0.
    Free,
}

/// Solves the LP relaxation of `model` (integrality ignored).
///
/// # Errors
///
/// Returns the model's validation errors, [`LpError::IterationLimit`] on
/// numerical cycling, or [`LpError::NumericallySingular`] on factorization
/// breakdown.
pub fn solve_lp(model: &Model) -> Result<LpSolution, LpError> {
    solve_lp_with_bounds(model, None, None)
}

/// Like [`solve_lp`] but with per-variable bound overrides (used by the
/// branch-and-bound tree) and an optional wall-clock deadline, reported
/// in-band as [`LpStatus::DeadlineExceeded`].
///
/// # Errors
///
/// See [`solve_lp`].
pub fn solve_lp_with_bounds(
    model: &Model,
    bounds: Option<(&[f64], &[f64])>,
    deadline: Option<Instant>,
) -> Result<LpSolution, LpError> {
    model.validate()?;
    if fbb_telemetry::is_enabled() {
        // Layer-2 audit (DESIGN.md §5g): observability only — defects are
        // published as audit_* counters, never change the solve result.
        model.audit().emit_telemetry();
    }
    let (var_lower, var_upper): (Vec<f64>, Vec<f64>) = match bounds {
        Some((lo, up)) => (lo.to_vec(), up.to_vec()),
        None => (
            model.vars.iter().map(|v| v.lower).collect(),
            model.vars.iter().map(|v| v.upper).collect(),
        ),
    };
    let mut engine = SparseEngine::new(model);
    Ok(engine.solve_cold(&var_lower, &var_upper, deadline)?.solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sense;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn trivial_bounds_only() {
        // min 2x - 3y with 0<=x<=4, 1<=y<=5: x=0, y=5.
        let mut m = Model::new();
        let _x = m.add_continuous(0.0, 4.0, 2.0);
        let _y = m.add_continuous(1.0, 5.0, -3.0);
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -15.0);
    }

    #[test]
    fn textbook_le_problem() {
        // min -(3x + 5y) s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 => x=2, y=6.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, -3.0);
        let y = m.add_continuous(0.0, f64::INFINITY, -5.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Le, 4.0).unwrap();
        m.add_constraint(vec![(y, 2.0)], Sense::Le, 12.0).unwrap();
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0).unwrap();
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn ge_and_eq_constraints() {
        // min x + 2y s.t. x + y = 10, x - y >= 2 => x=6, y=4 ... check:
        // objective 6 + 8 = 14; alternative x=10,y=0 gives 10. x-y=10 >= 2 ok!
        // So optimum is x=10, y=0, objective 10.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, 1.0);
        let y = m.add_continuous(0.0, f64::INFINITY, 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Eq, 10.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Sense::Ge, 2.0).unwrap();
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 10.0);
        assert_close(s.x[0], 10.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 2.0).unwrap();
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, -1.0);
        m.add_constraint(vec![(x, -1.0)], Sense::Le, 0.0).unwrap();
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_without_rows() {
        // min -x - y s.t. x + y <= 1.5, x,y in [0,1]: obj -1.5.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0, -1.0);
        let y = m.add_continuous(0.0, 1.0, -1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 1.5).unwrap();
        let s = solve_lp(&m).unwrap();
        assert_close(s.objective, -1.5);
    }

    #[test]
    fn negative_rhs_rows() {
        // min x s.t. -x <= -3 (i.e. x >= 3), x <= 10.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, -1.0)], Sense::Le, -3.0).unwrap();
        let s = solve_lp(&m).unwrap();
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn free_variable() {
        // min x s.t. x >= -5 with x free: x = -5.
        let mut m = Model::new();
        let x = m.add_continuous(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, -5.0).unwrap();
        let s = solve_lp(&m).unwrap();
        assert_close(s.objective, -5.0);
    }

    #[test]
    fn fixed_variables_respected() {
        let mut m = Model::new();
        let x = m.add_continuous(2.0, 2.0, 1.0);
        let y = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 5.0).unwrap();
        let s = solve_lp(&m).unwrap();
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 3.0);
    }

    #[test]
    fn bound_overrides() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 1.0).unwrap();
        let s = solve_lp_with_bounds(&m, Some((&[4.0], &[10.0])), None).unwrap();
        assert_close(s.x[0], 4.0);
        // Empty box reports infeasible.
        let s = solve_lp_with_bounds(&m, Some((&[4.0], &[3.0])), None).unwrap();
        assert_eq!(s.status, LpStatus::Infeasible);

        // An already-expired deadline aborts cleanly.
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let s = solve_lp_with_bounds(&m, None, Some(past)).unwrap();
        assert_eq!(s.status, LpStatus::DeadlineExceeded);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, -1.0);
        let y = m.add_continuous(0.0, f64::INFINITY, -1.0);
        for _ in 0..6 {
            m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 1.0).unwrap();
        }
        m.add_constraint(vec![(x, 1.0)], Sense::Le, 1.0).unwrap();
        m.add_constraint(vec![(y, 1.0)], Sense::Le, 1.0).unwrap();
        let s = solve_lp(&m).unwrap();
        assert_close(s.objective, -1.0);
    }

    #[test]
    fn redundant_equalities() {
        // x + y = 1 stated twice; min x.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0, 1.0);
        let y = m.add_continuous(0.0, 1.0, 0.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Eq, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Eq, 1.0).unwrap();
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 0.0);
        assert_close(s.x[1], 1.0);
    }
}
