//! Basis factorization for the revised simplex: sparse LU with
//! product-form (eta) updates.
//!
//! The basis matrix `B` (one column of [`crate::sparse::CscMatrix`] per
//! basic variable) is factorized as `PB = LU` by a left-looking
//! Gilbert–Peierls elimination with partial pivoting: each column is
//! obtained by a sparse triangular solve whose nonzero pattern is found by
//! depth-first reachability over the columns of `L` built so far, so the
//! work per column is proportional to arithmetic actually performed rather
//! than to `m`.
//!
//! After a pivot the simplex does not refactorize; it appends an *eta*
//! column — the product-form update `B_k = B_0 · E_1 ⋯ E_k`, where `E_j` is
//! the identity with one column replaced by the FTRAN image of the entering
//! column. FTRAN applies the base LU solve and then the eta inverses
//! oldest-first; BTRAN applies the eta transpose-inverses newest-first and
//! then the transposed LU solve. The eta file is discarded on
//! refactorization, which the engine triggers on a count/stability policy
//! (see `DESIGN.md` §5f) — never on wall-clock, so factorization telemetry
//! stays deterministic per seed.

use crate::approx::{is_nonzero, is_zero};
use crate::sparse::CscMatrix;

/// A pivot would divide by a value at or below this; the basis is treated
/// as numerically singular and the caller refactorizes or restarts.
const SINGULAR_TOL: f64 = 1e-11;
/// Eta entries below this magnitude are dropped; they are roundoff, and
/// keeping them only grows FTRAN/BTRAN work.
const ETA_DROP_TOL: f64 = 1e-12;

/// The candidate basis had no usable pivot in some column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SingularBasis;

/// `PB = LU` for one snapshot of the basis.
///
/// `L` is unit lower triangular and `U` upper triangular, both stored
/// column-wise with row indices in *pivot-position* space; `pinv` maps an
/// original row index to its pivot position.
#[derive(Debug, Clone)]
struct LuFactor {
    m: usize,
    l_ptr: Vec<usize>,
    l_idx: Vec<usize>,
    l_val: Vec<f64>,
    u_ptr: Vec<usize>,
    u_idx: Vec<usize>,
    u_val: Vec<f64>,
    u_diag: Vec<f64>,
    pinv: Vec<usize>,
}

const UNPIVOTED: usize = usize::MAX;

impl LuFactor {
    /// Factorizes the basis columns `basis[pos] = matrix column` in
    /// position order.
    fn factorize(mat: &CscMatrix, basis: &[usize]) -> Result<LuFactor, SingularBasis> {
        let m = mat.rows();
        debug_assert_eq!(basis.len(), m);
        let mut f = LuFactor {
            m,
            l_ptr: Vec::with_capacity(m + 1),
            l_idx: Vec::new(),
            l_val: Vec::new(),
            u_ptr: Vec::with_capacity(m + 1),
            u_idx: Vec::new(),
            u_val: Vec::new(),
            u_diag: Vec::with_capacity(m),
            pinv: vec![UNPIVOTED; m],
        };
        f.l_ptr.push(0);
        f.u_ptr.push(0);

        // Scatter / DFS workspaces, reset incrementally between columns.
        let mut x = vec![0.0f64; m];
        let mut visited = vec![false; m];
        let mut topo: Vec<usize> = Vec::with_capacity(m);
        let mut dfs: Vec<(usize, usize)> = Vec::with_capacity(m);

        for (k, &bk) in basis.iter().enumerate() {
            let (b_rows, b_vals) = mat.col(bk);

            // Symbolic step: nonzero pattern of L⁻¹ b is the set of rows
            // reachable from b's pattern through columns of L built so far.
            // Reverse DFS postorder gives a valid elimination order.
            topo.clear();
            for &root in b_rows {
                if visited[root] {
                    continue;
                }
                dfs.push((root, 0));
                visited[root] = true;
                while let Some(&mut (node, ref mut child)) = dfs.last_mut() {
                    let col = f.pinv[node];
                    let kids: &[usize] = if col == UNPIVOTED {
                        &[]
                    } else {
                        &f.l_idx[f.l_ptr[col]..f.l_ptr[col + 1]]
                    };
                    // Note: before the final remap below, l_idx holds
                    // *original* row indices, which is what DFS needs.
                    if *child < kids.len() {
                        let next = kids[*child];
                        *child += 1;
                        if !visited[next] {
                            visited[next] = true;
                            dfs.push((next, 0));
                        }
                    } else {
                        topo.push(node);
                        dfs.pop();
                    }
                }
            }

            // Numeric step: x = L⁻¹ b over the pattern, deepest nodes last.
            for (&i, &v) in b_rows.iter().zip(b_vals) {
                x[i] = v;
            }
            for &i in topo.iter().rev() {
                let col = f.pinv[i];
                if col == UNPIVOTED {
                    continue;
                }
                let xi = x[i];
                if is_zero(xi) {
                    continue;
                }
                for (idx, &r) in f.l_idx[f.l_ptr[col]..f.l_ptr[col + 1]].iter().enumerate() {
                    x[r] -= f.l_val[f.l_ptr[col] + idx] * xi;
                }
            }

            // Partial pivoting over rows not yet assigned a pivot.
            let mut pivot_row = UNPIVOTED;
            let mut pivot_mag = SINGULAR_TOL;
            for &i in &topo {
                if f.pinv[i] == UNPIVOTED && x[i].abs() > pivot_mag {
                    pivot_mag = x[i].abs();
                    pivot_row = i;
                }
            }
            if pivot_row == UNPIVOTED {
                // Clean up workspaces before reporting failure.
                for &i in &topo {
                    x[i] = 0.0;
                    visited[i] = false;
                }
                return Err(SingularBasis);
            }
            let diag = x[pivot_row];

            for &i in &topo {
                if f.pinv[i] != UNPIVOTED {
                    f.u_idx.push(f.pinv[i]);
                    f.u_val.push(x[i]);
                } else if i != pivot_row {
                    let scaled = x[i] / diag;
                    if is_nonzero(scaled) {
                        f.l_idx.push(i);
                        f.l_val.push(scaled);
                    }
                }
                x[i] = 0.0;
                visited[i] = false;
            }
            f.u_diag.push(diag);
            f.u_ptr.push(f.u_idx.len());
            f.l_ptr.push(f.l_idx.len());
            f.pinv[pivot_row] = k;
        }

        // Remap L's row indices from original to pivot-position space so the
        // triangular solves below never consult the permutation.
        for r in f.l_idx.iter_mut() {
            *r = f.pinv[*r];
        }
        Ok(f)
    }

    /// In-place FTRAN: on entry `x` holds `b` in original row space, on exit
    /// the solution of `Bx = b` indexed by basis position.
    fn solve_dense(&self, x: &mut [f64]) {
        let m = self.m;
        // Permute into pivot space via a scratch pass.
        let mut y = vec![0.0f64; m];
        for (i, &v) in x.iter().enumerate() {
            y[self.pinv[i]] = v;
        }
        // Unit lower forward solve.
        for k in 0..m {
            let yk = y[k];
            if is_nonzero(yk) {
                for idx in self.l_ptr[k]..self.l_ptr[k + 1] {
                    y[self.l_idx[idx]] -= self.l_val[idx] * yk;
                }
            }
        }
        // Upper backward solve.
        for k in (0..m).rev() {
            let yk = y[k] / self.u_diag[k];
            y[k] = yk;
            if is_nonzero(yk) {
                for idx in self.u_ptr[k]..self.u_ptr[k + 1] {
                    y[self.u_idx[idx]] -= self.u_val[idx] * yk;
                }
            }
        }
        x.copy_from_slice(&y);
    }

    /// In-place BTRAN: on entry `x` holds `c` indexed by basis position, on
    /// exit the solution of `Bᵀy = c` in original row space.
    fn solve_transpose_dense(&self, x: &mut [f64]) {
        let m = self.m;
        // Uᵀ forward solve.
        for k in 0..m {
            let mut v = x[k];
            for idx in self.u_ptr[k]..self.u_ptr[k + 1] {
                v -= self.u_val[idx] * x[self.u_idx[idx]];
            }
            x[k] = v / self.u_diag[k];
        }
        // Lᵀ backward solve (unit diagonal).
        for k in (0..m).rev() {
            let mut v = x[k];
            for idx in self.l_ptr[k]..self.l_ptr[k + 1] {
                v -= self.l_val[idx] * x[self.l_idx[idx]];
            }
            x[k] = v;
        }
        // Permute back to original row space.
        let mut y = vec![0.0f64; m];
        for (i, &pos) in self.pinv.iter().enumerate() {
            y[i] = x[pos];
        }
        x.copy_from_slice(&y);
    }
}

/// One product-form update `E`: identity with column `pivot` replaced by a
/// (sparse) FTRAN image of the entering column.
#[derive(Debug, Clone)]
struct Eta {
    pivot: usize,
    pivot_val: f64,
    /// Off-pivot entries `(basis position, value)`.
    entries: Vec<(usize, f64)>,
}

/// An LU-factorized basis plus the eta file accumulated since the last
/// refactorization.
#[derive(Debug, Clone)]
pub(crate) struct BasisFactor {
    lu: LuFactor,
    etas: Vec<Eta>,
}

/// Refactorize once this many etas have accumulated: beyond it the eta
/// sweeps cost more than a fresh LU and roundoff from stacked updates
/// starts to show in the ratio test.
pub(crate) const MAX_ETAS: usize = 64;

impl BasisFactor {
    /// Factorizes the given basis columns of `mat`.
    pub fn factorize(mat: &CscMatrix, basis: &[usize]) -> Result<BasisFactor, SingularBasis> {
        Ok(BasisFactor { lu: LuFactor::factorize(mat, basis)?, etas: Vec::new() })
    }

    /// Number of eta updates since the last refactorization.
    pub fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// True once the eta file is long enough that the engine should
    /// refactorize at the next pivot.
    pub fn should_refactor(&self) -> bool {
        self.eta_count() >= MAX_ETAS
    }

    /// Solves `B x = b` in place: `x` enters in original row space, leaves
    /// indexed by basis position.
    pub fn ftran(&self, x: &mut [f64]) {
        self.lu.solve_dense(x);
        // Oldest eta first: x ← E_j⁻¹ x.
        for eta in &self.etas {
            let xr = x[eta.pivot] / eta.pivot_val;
            x[eta.pivot] = xr;
            if is_nonzero(xr) {
                for &(i, v) in &eta.entries {
                    x[i] -= v * xr;
                }
            }
        }
    }

    /// Solves `Bᵀ y = c` in place: `x` enters indexed by basis position,
    /// leaves in original row space.
    pub fn btran(&self, x: &mut [f64]) {
        // Newest eta first: x ← E_jᵀ⁻¹ x.
        for eta in self.etas.iter().rev() {
            let mut v = x[eta.pivot];
            for &(i, w) in &eta.entries {
                v -= w * x[i];
            }
            x[eta.pivot] = v / eta.pivot_val;
        }
        self.lu.solve_transpose_dense(x);
    }

    /// Records the pivot that replaces basis position `pivot` with the
    /// variable whose FTRAN image is `column` (dense, basis-position
    /// indexed). Fails when the pivot element is numerically unusable, in
    /// which case the caller must refactorize instead.
    pub fn push_eta(&mut self, pivot: usize, column: &[f64]) -> Result<(), SingularBasis> {
        let pivot_val = column[pivot];
        if pivot_val.abs() <= SINGULAR_TOL {
            return Err(SingularBasis);
        }
        let entries: Vec<(usize, f64)> = column
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != pivot && v.abs() > ETA_DROP_TOL)
            .map(|(i, &v)| (i, v))
            .collect();
        self.etas.push(Eta { pivot, pivot_val, entries });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;
    use crate::Model;

    /// Builds the CSC matrix for rows given as dense coefficient slices.
    fn csc_from_rows(n: usize, rows: &[&[f64]]) -> CscMatrix {
        let mut model = Model::new();
        for _ in 0..n {
            model.add_continuous(0.0, 1.0, 0.0);
        }
        for row in rows {
            let terms: Vec<(usize, f64)> =
                row.iter().enumerate().filter(|(_, &c)| c != 0.0).map(|(j, &c)| (j, c)).collect();
            model.add_constraint(terms, Sense::Eq, 0.0).unwrap();
        }
        CscMatrix::build(&model)
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn identity_basis_round_trips() {
        // Basis = artificial columns = I.
        let mat = csc_from_rows(2, &[&[3.0, 1.0], &[1.0, 2.0]]);
        let n = 2;
        let m = 2;
        let basis: Vec<usize> = (0..m).map(|k| n + m + k).collect();
        let f = BasisFactor::factorize(&mat, &basis).unwrap();
        let mut x = vec![5.0, -7.0];
        f.ftran(&mut x);
        assert_close(&x, &[5.0, -7.0]);
        let mut y = vec![1.5, 2.5];
        f.btran(&mut y);
        assert_close(&y, &[1.5, 2.5]);
    }

    #[test]
    fn structural_basis_solves_match_hand_inverse() {
        // B = [[3, 1], [1, 2]], det 5; B⁻¹ = [[2, -1], [-1, 3]] / 5.
        let mat = csc_from_rows(2, &[&[3.0, 1.0], &[1.0, 2.0]]);
        let f = BasisFactor::factorize(&mat, &[0, 1]).unwrap();

        let mut x = vec![1.0, 0.0];
        f.ftran(&mut x);
        assert_close(&x, &[0.4, -0.2]);

        let mut y = vec![0.0, 1.0];
        f.btran(&mut y);
        // Bᵀ y = e_2 -> y = B⁻ᵀ e_2 = column 2 of B⁻ᵀ = row 2 of B⁻¹.
        assert_close(&y, &[-0.2, 0.6]);
    }

    #[test]
    fn permutation_requiring_basis_factors() {
        // First column forces a row swap: [[0, 1], [1, 0]].
        let mat = csc_from_rows(2, &[&[0.0, 1.0], &[1.0, 0.0]]);
        let f = BasisFactor::factorize(&mat, &[0, 1]).unwrap();
        let mut x = vec![3.0, 4.0];
        f.ftran(&mut x);
        // B = [[0,1],[1,0]] so x = B⁻¹ b swaps entries.
        assert_close(&x, &[4.0, 3.0]);
    }

    #[test]
    fn eta_update_matches_refactorization() {
        // Start from basis {x0, x1}, replace position 1 with the slack of
        // row 0; compare FTRAN/BTRAN after the eta vs. a fresh LU.
        let mat = csc_from_rows(3, &[&[3.0, 1.0, 2.0], &[1.0, 2.0, -1.0]]);
        let mut f = BasisFactor::factorize(&mat, &[0, 1]).unwrap();

        let entering = 3; // slack of row 0
        let mut w = vec![0.0f64; 2];
        mat.scatter_col(entering, 1.0, &mut w);
        f.ftran(&mut w);
        f.push_eta(1, &w).unwrap();
        assert_eq!(f.eta_count(), 1);

        let fresh = BasisFactor::factorize(&mat, &[0, entering]).unwrap();
        for rhs in [[1.0, 0.0], [0.0, 1.0], [2.5, -4.0]] {
            let mut a = rhs.to_vec();
            let mut b = rhs.to_vec();
            f.ftran(&mut a);
            fresh.ftran(&mut b);
            assert_close(&a, &b);

            let mut a = rhs.to_vec();
            let mut b = rhs.to_vec();
            f.btran(&mut a);
            fresh.btran(&mut b);
            assert_close(&a, &b);
        }
    }

    #[test]
    fn stacked_etas_still_agree_with_fresh_lu() {
        // 3×3 system, two successive replacements.
        let mat =
            csc_from_rows(3, &[&[2.0, 0.0, 1.0], &[1.0, 3.0, 0.0], &[0.0, 1.0, 4.0]]);
        let mut f = BasisFactor::factorize(&mat, &[0, 1, 2]).unwrap();

        // Bring in slack of row 1 (col 4) replacing position 0.
        let mut w = vec![0.0f64; 3];
        mat.scatter_col(4, 1.0, &mut w);
        f.ftran(&mut w);
        f.push_eta(0, &w).unwrap();
        // Bring in slack of row 0 (col 3) replacing position 2.
        let mut w = vec![0.0f64; 3];
        mat.scatter_col(3, 1.0, &mut w);
        f.ftran(&mut w);
        f.push_eta(2, &w).unwrap();

        let fresh = BasisFactor::factorize(&mat, &[4, 1, 3]).unwrap();
        for rhs in [[1.0, 0.0, 0.0], [0.0, 0.0, 1.0], [1.0, -2.0, 0.5]] {
            let mut a = rhs.to_vec();
            let mut b = rhs.to_vec();
            f.ftran(&mut a);
            fresh.ftran(&mut b);
            assert_close(&a, &b);

            let mut a = rhs.to_vec();
            let mut b = rhs.to_vec();
            f.btran(&mut a);
            fresh.btran(&mut b);
            assert_close(&a, &b);
        }
    }

    #[test]
    fn singular_basis_is_reported_not_crashed() {
        // Two copies of the same column cannot form a basis.
        let mat = csc_from_rows(2, &[&[1.0, 1.0], &[2.0, 2.0]]);
        assert_eq!(BasisFactor::factorize(&mat, &[0, 1]).unwrap_err(), SingularBasis);
    }

    #[test]
    fn tiny_eta_pivot_is_rejected() {
        let mat = csc_from_rows(2, &[&[1.0, 0.0], &[0.0, 1.0]]);
        let mut f = BasisFactor::factorize(&mat, &[0, 1]).unwrap();
        let w = vec![0.0, 1e-13];
        assert_eq!(f.push_eta(1, &w).unwrap_err(), SingularBasis);
    }
}
