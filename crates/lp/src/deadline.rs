//! The solver stack's single wall-clock authority.
//!
//! Determinism policy (enforced by the `fbb-audit` FA003 rule): solver
//! layers never read the clock directly — every `Instant::now()` and
//! elapsed-time read in `fbb-lp`, `fbb-sta`, `fbb-core`, and
//! `fbb-variation` goes through this module (or a telemetry span). That
//! keeps wall-clock influence on solver *behavior* confined to two
//! auditable operations: deadline polling ([`reached`]) and runtime
//! reporting ([`Stopwatch::runtime`]).

use std::time::{Duration, Instant};

/// Whether the absolute deadline `d` has passed. The simplex engines poll
/// this every 64 iterations; it is the only clock read on the LP hot path.
#[inline]
#[must_use]
pub fn reached(d: Instant) -> bool {
    Instant::now() >= d
}

/// A started timer: measures runtime for stats/telemetry and derives
/// absolute deadlines from relative limits.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the timer.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Time since [`Stopwatch::start`]. Named `runtime` (not `elapsed`)
    /// because the result is observability output — solver decisions use
    /// [`Stopwatch::expired_after`] / [`reached`] instead.
    #[must_use]
    pub fn runtime(&self) -> Duration {
        self.start.elapsed()
    }

    /// The absolute deadline `limit` after the start, for handing to the
    /// LP engines' `deadline: Option<Instant>` parameter.
    #[must_use]
    pub fn deadline_after(&self, limit: Option<Duration>) -> Option<Instant> {
        limit.map(|tl| self.start + tl)
    }

    /// Whether more than `limit` has passed since the start; `false` when
    /// no limit is set.
    #[must_use]
    pub fn expired_after(&self, limit: Option<Duration>) -> bool {
        limit.is_some_and(|tl| self.runtime() >= tl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn past_deadline_is_reached() {
        let past = Instant::now() - Duration::from_millis(1);
        assert!(reached(past));
        assert!(!reached(Instant::now() + Duration::from_secs(3600)));
    }

    #[test]
    fn stopwatch_limits() {
        let sw = Stopwatch::start();
        assert!(!sw.expired_after(None));
        assert!(!sw.expired_after(Some(Duration::from_secs(3600))));
        assert!(sw.expired_after(Some(Duration::ZERO)));
        assert_eq!(sw.deadline_after(None), None);
        let d = sw.deadline_after(Some(Duration::ZERO)).expect("deadline");
        assert!(reached(d));
    }
}
