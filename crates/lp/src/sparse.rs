//! Compressed sparse column (CSC) storage for the revised simplex.
//!
//! The FBB ILP's columns are extremely sparse — an assignment variable
//! `x[i][j]` appears in its row's Eq. 3 constraint, the Eq. 4 linking row of
//! its level, and only the Eq. 2 rows of paths that actually cross row `i`
//! — so per-column storage is what lets a pivot cost O(fill) instead of the
//! dense tableau's O(m·n). The matrix is built once per model (columns =
//! structurals, then one slack and one artificial per row) and never mutated
//! afterwards: the simplex tracks basis changes in the LU/eta factorization
//! ([`crate::factor`]), not in the matrix.

use crate::model::Sense;
use crate::Model;

/// An immutable m×n sparse matrix in compressed-sparse-column form.
#[derive(Debug, Clone)]
pub(crate) struct CscMatrix {
    rows: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Stored non-zero count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column `j` as parallel `(row indices, values)` slices.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let span = self.col_ptr[j]..self.col_ptr[j + 1];
        (&self.row_idx[span.clone()], &self.values[span])
    }

    /// Sparse dot product of column `j` with a dense vector.
    pub fn col_dot(&self, j: usize, dense: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        let mut acc = 0.0;
        for (&i, &v) in rows.iter().zip(vals) {
            acc += v * dense[i];
        }
        acc
    }

    /// Scatters `scale * column j` into a dense accumulator.
    pub fn scatter_col(&self, j: usize, scale: f64, dense: &mut [f64]) {
        let (rows, vals) = self.col(j);
        for (&i, &v) in rows.iter().zip(vals) {
            dense[i] += scale * v;
        }
    }

    /// Builds the simplex working matrix `[A | I_slack | I_art]` for a
    /// model: `n` structural columns transposed out of the row-major
    /// constraint storage, then one `+e_k` slack and one `+e_k` artificial
    /// column per row. Unlike the dense tableau, rows are **not**
    /// sign-normalized — the artificial start is made feasible by choosing
    /// each artificial's bounds from the sign of its row residual instead,
    /// which keeps the matrix identical across every branch-and-bound node
    /// and is what makes basis warm-starting sound.
    pub fn build(model: &Model) -> CscMatrix {
        let n = model.vars.len();
        let m = model.constraints.len();
        let ntot = n + 2 * m;

        // Count structural entries per column, then prefix-sum.
        let mut col_ptr = vec![0usize; ntot + 1];
        for c in &model.constraints {
            for &(v, _) in &c.terms {
                col_ptr[v + 1] += 1;
            }
        }
        for k in 0..m {
            col_ptr[n + k + 1] = 1; // slack
            col_ptr[n + m + k + 1] = 1; // artificial
        }
        for j in 0..ntot {
            col_ptr[j + 1] += col_ptr[j];
        }

        let nnz = col_ptr[ntot];
        let mut row_idx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut cursor = col_ptr.clone();
        for (k, c) in model.constraints.iter().enumerate() {
            for &(v, coef) in &c.terms {
                let slot = cursor[v];
                cursor[v] += 1;
                row_idx[slot] = k;
                values[slot] = coef;
            }
        }
        for k in 0..m {
            for base in [n + k, n + m + k] {
                let slot = cursor[base];
                cursor[base] += 1;
                row_idx[slot] = k;
                values[slot] = 1.0;
            }
        }
        CscMatrix { rows: m, col_ptr, row_idx, values }
    }
}

/// Slack bounds implied by a constraint sense (`lhs + slack = rhs`).
pub(crate) fn slack_bounds(sense: Sense) -> (f64, f64) {
    match sense {
        Sense::Le => (0.0, f64::INFINITY),
        Sense::Ge => (f64::NEG_INFINITY, 0.0),
        Sense::Eq => (0.0, 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sense;

    #[test]
    fn build_transposes_rows_into_columns() {
        // Rows: [2x + 3y <= 5], [y - z = 1].
        let mut model = Model::new();
        let x = model.add_continuous(0.0, 1.0, 0.0);
        let y = model.add_continuous(0.0, 1.0, 0.0);
        let z = model.add_continuous(0.0, 1.0, 0.0);
        model.add_constraint(vec![(x, 2.0), (y, 3.0)], Sense::Le, 5.0).unwrap();
        model.add_constraint(vec![(y, 1.0), (z, -1.0)], Sense::Eq, 1.0).unwrap();

        let csc = CscMatrix::build(&model);
        assert_eq!(csc.rows(), 2);
        assert_eq!(csc.cols(), 3 + 2 + 2);
        assert_eq!(csc.nnz(), 4 + 2 + 2);

        assert_eq!(csc.col(x), (&[0usize][..], &[2.0][..]));
        assert_eq!(csc.col(y), (&[0usize, 1][..], &[3.0, 1.0][..]));
        assert_eq!(csc.col(z), (&[1usize][..], &[-1.0][..]));
        // Slacks then artificials are unit columns.
        for k in 0..2 {
            assert_eq!(csc.col(3 + k), (&[k][..], &[1.0][..]));
            assert_eq!(csc.col(3 + 2 + k), (&[k][..], &[1.0][..]));
        }
    }

    #[test]
    fn dot_and_scatter_agree_with_dense_arithmetic() {
        let mut model = Model::new();
        let x = model.add_continuous(0.0, 1.0, 0.0);
        let y = model.add_continuous(0.0, 1.0, 0.0);
        model.add_constraint(vec![(x, 1.0), (y, 2.0)], Sense::Le, 1.0).unwrap();
        model.add_constraint(vec![(x, -3.0)], Sense::Ge, 0.0).unwrap();
        let csc = CscMatrix::build(&model);

        let dense = [0.5, 4.0];
        assert!((csc.col_dot(x, &dense) - (0.5 - 12.0)).abs() < 1e-12);
        let mut acc = [1.0, 1.0];
        csc.scatter_col(x, 2.0, &mut acc);
        assert!((acc[0] - 3.0).abs() < 1e-12);
        assert!((acc[1] - (1.0 - 6.0)).abs() < 1e-12);
    }

    #[test]
    fn slack_bounds_match_senses() {
        assert_eq!(slack_bounds(Sense::Le), (0.0, f64::INFINITY));
        assert_eq!(slack_bounds(Sense::Ge), (f64::NEG_INFINITY, 0.0));
        assert_eq!(slack_bounds(Sense::Eq), (0.0, 0.0));
    }
}
