//! Deterministic fault-injection hooks (feature `fault-inject`).
//!
//! The differential test harness in `fbb-testkit` needs two things from the
//! solver that cannot be reached through the public API alone:
//!
//! 1. a way to force the rare exit paths (`LpError::IterationLimit`) without
//!    constructing a numerically cycling instance, and
//! 2. a way to plant a *known* bug — a flipped pivot sign — to prove the
//!    harness actually catches solver defects instead of rubber-stamping.
//!
//! Both are thread-local toggles: a solve reads them once at entry, so they
//! are race-free under the worker pool (each worker sees its own, unarmed,
//! state) and deterministic (no wall-clock, no global mutation). When the
//! feature is enabled but no hook is armed, every solve behaves exactly as
//! without the feature — the hooks are read-only checks of thread-local
//! `Cell`s outside the hot loop.
//!
//! These hooks exist for tests only. Arm them through the scoped helpers
//! ([`with_iteration_limit`], [`with_flipped_pivot_sign`]) where possible;
//! the raw setters are provided for CLI-driven soaks that keep a hook armed
//! across many solves (`fbb difftest --inject-pivot-bug`).

use std::cell::Cell;

thread_local! {
    static ITERATION_LIMIT_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static FLIP_PIVOT_SIGN: Cell<bool> = const { Cell::new(false) };
    static SWAP_POSTSOLVE_ENTRIES: Cell<bool> = const { Cell::new(false) };
}

/// Overrides the simplex iteration budget for subsequent solves on this
/// thread (`None` restores the organic `50_000 + 40·(n+m)` budget).
pub fn set_iteration_limit_override(limit: Option<usize>) {
    ITERATION_LIMIT_OVERRIDE.with(|c| c.set(limit));
}

/// Arms or disarms the flipped-pivot-sign bug for subsequent solves on this
/// thread. While armed, phase 2 prices every column with the negated reduced
/// cost — the solver walks *away* from the optimum and terminates at an
/// anti-optimal vertex that it confidently labels `Optimal`. This is the
/// harness's planted defect: an independent oracle must flag it.
pub fn set_flip_pivot_sign(armed: bool) {
    FLIP_PIVOT_SIGN.with(|c| c.set(armed));
}

/// Arms or disarms the transposed-postsolve-map bug for subsequent solves
/// on this thread. While armed, `PostsolveMap::restore` swaps the values of
/// the first two surviving columns of the elimination map — the classic
/// off-by-one bookkeeping slip a hand-rolled presolve invites. The solve
/// still reports `Optimal` with a plausible objective; only an independent
/// oracle replaying the *decoded* solution can catch it (`fbb difftest
/// --inject-postsolve-bug`).
pub fn set_swap_postsolve_entries(armed: bool) {
    SWAP_POSTSOLVE_ENTRIES.with(|c| c.set(armed));
}

/// Disarms every hook on this thread.
pub fn reset() {
    set_iteration_limit_override(None);
    set_flip_pivot_sign(false);
    set_swap_postsolve_entries(false);
}

/// Runs `f` with the iteration budget overridden, restoring the previous
/// override afterwards (also on unwind via the drop guard).
pub fn with_iteration_limit<T>(limit: usize, f: impl FnOnce() -> T) -> T {
    let previous = ITERATION_LIMIT_OVERRIDE.with(Cell::get);
    let _guard = RestoreIterLimit(previous);
    set_iteration_limit_override(Some(limit));
    f()
}

/// Runs `f` with the flipped-pivot-sign bug armed, restoring the previous
/// state afterwards (also on unwind via the drop guard).
pub fn with_flipped_pivot_sign<T>(f: impl FnOnce() -> T) -> T {
    let previous = FLIP_PIVOT_SIGN.with(Cell::get);
    let _guard = RestoreFlip(previous);
    set_flip_pivot_sign(true);
    f()
}

struct RestoreIterLimit(Option<usize>);
impl Drop for RestoreIterLimit {
    fn drop(&mut self) {
        set_iteration_limit_override(self.0);
    }
}

/// Runs `f` with the transposed-postsolve-map bug armed, restoring the
/// previous state afterwards (also on unwind via the drop guard).
pub fn with_swapped_postsolve_entries<T>(f: impl FnOnce() -> T) -> T {
    let previous = SWAP_POSTSOLVE_ENTRIES.with(Cell::get);
    let _guard = RestoreSwap(previous);
    set_swap_postsolve_entries(true);
    f()
}

struct RestoreFlip(bool);
impl Drop for RestoreFlip {
    fn drop(&mut self) {
        set_flip_pivot_sign(self.0);
    }
}

struct RestoreSwap(bool);
impl Drop for RestoreSwap {
    fn drop(&mut self) {
        set_swap_postsolve_entries(self.0);
    }
}

pub(crate) fn iteration_limit_override() -> Option<usize> {
    ITERATION_LIMIT_OVERRIDE.with(Cell::get)
}

pub(crate) fn flip_pivot_sign() -> bool {
    FLIP_PIVOT_SIGN.with(Cell::get)
}

pub(crate) fn swap_postsolve_entries() -> bool {
    SWAP_POSTSOLVE_ENTRIES.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_helpers_restore_state() {
        assert_eq!(iteration_limit_override(), None);
        with_iteration_limit(3, || {
            assert_eq!(iteration_limit_override(), Some(3));
            with_iteration_limit(7, || assert_eq!(iteration_limit_override(), Some(7)));
            assert_eq!(iteration_limit_override(), Some(3));
        });
        assert_eq!(iteration_limit_override(), None);

        assert!(!flip_pivot_sign());
        with_flipped_pivot_sign(|| assert!(flip_pivot_sign()));
        assert!(!flip_pivot_sign());

        assert!(!swap_postsolve_entries());
        with_swapped_postsolve_entries(|| assert!(swap_postsolve_entries()));
        assert!(!swap_postsolve_entries());
    }

    #[test]
    fn reset_disarms_everything() {
        set_iteration_limit_override(Some(1));
        set_flip_pivot_sign(true);
        set_swap_postsolve_entries(true);
        reset();
        assert_eq!(iteration_limit_override(), None);
        assert!(!flip_pivot_sign());
        assert!(!swap_postsolve_entries());
    }
}
