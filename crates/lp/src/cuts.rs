//! Root cutting planes from the paper's ILP structure (DESIGN.md §5j).
//!
//! The FBB allocation ILP (Eq. 1–4) carries three exploitable row shapes:
//!
//! * **Eq. 3 one-hot rows** `Σ_j x_{ij} = 1` — each row of gates picks
//!   exactly one bias level;
//! * **Eq. 4 linking rows** `Σ_i x_{ij} − N·y_j ≤ 0` — a level is only
//!   usable when its cluster indicator is open. Together with the one-hot
//!   rows these put every `(x_{ij}, ¬y_j)` pair in a conflict clique, whose
//!   strongest disaggregation is the **clique cut** `x_{ij} − y_j ≤ 0`: the
//!   big-`N` row lets the LP relaxation open a cluster `1/N`-th of the way,
//!   the clique cut does not;
//! * **the Eq. 4 budget row** `Σ_j y_j ≤ C` and the Eq. 2 path rows —
//!   knapsack-shaped rows over binaries, which yield **cover cuts**: if a
//!   subset `S` of columns cannot all be 1 without busting the capacity,
//!   then `Σ_S x ≤ |S|−1`; symmetrically a `≥` row whose capacity cannot be
//!   met with every column of `S` at 0 yields `Σ_S x ≥ 1`.
//!
//! Cuts are *valid inequalities*: they never exclude an integer-feasible
//! point, only fractional vertices of the relaxation — so the branch & bound
//! answer is unchanged while the tree shrinks. Validity is pinned two ways:
//! every emitted cover passes [`cover_is_valid`]/[`ge_cover_is_valid`]
//! before it is emitted, and `crates/testkit/tests/cut_validity.rs` replays
//! every cut against the brute-force oracle's full enumeration.
//!
//! Separation runs at the root only: the [`SparseEngine`](crate) constraint
//! matrix is built once per tree (that is what makes parent-basis warm
//! starts sound), so rows cannot be added mid-tree. Warm-started children
//! instead *re-check* the root cuts against their relaxation point
//! (`bnb_cut_child_rechecks`).
//!
//! The `fbb-core` ILP builder knows which rows it emitted and hands the
//! indices down as [`StructureHints`]; the detector shape-verifies every
//! hinted row rather than trusting it (a stale hint after presolve row
//! elimination must degrade to "no cut", never to a wrong cut). Without
//! hints — the benchmark generators, random difftest models — detection
//! falls back to a full scan.

use std::collections::HashSet;

use crate::model::{Sense, VarKind};
use crate::Model;

/// Violation threshold: a cut is only added when the relaxation point
/// exceeds it by more than this (matches the B&B integrality tolerance).
const CUT_TOL: f64 = 1e-6;

/// Structural row indices the model generator hands to the cut separator
/// (`MipOptions::hints`). Indices refer to the model given to `solve_mip`;
/// presolve translates them to the reduced model's rows. Every hinted row
/// is shape-verified before use.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StructureHints {
    /// Eq. 3 one-hot assignment rows (`Σ_j x_{ij} = 1`).
    pub one_hot_rows: Vec<usize>,
    /// Eq. 4 linking rows (`Σ_i x_{ij} − N·y_j ≤ 0`).
    pub linking_rows: Vec<usize>,
    /// The Eq. 4 cluster-budget row (`Σ_j y_j ≤ C`).
    pub budget_row: Option<usize>,
}

/// Family a cut came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutKind {
    /// Disaggregated linking clique cut `x_v − y ≤ 0`.
    Clique,
    /// Knapsack cover cut (`Σ_S x ≤ |S|−1` from a `≤` row, or the
    /// complemented `Σ_S x ≥ 1` from a `≥` row).
    Cover,
}

/// One valid inequality separated at the root.
#[derive(Debug, Clone, PartialEq)]
pub struct Cut {
    /// `(variable, coefficient)` pairs, strictly increasing indices.
    pub terms: Vec<(usize, f64)>,
    /// Row sense (`Le` for cliques and `≤` covers, `Ge` for complement
    /// covers).
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
    /// Family the cut came from.
    pub kind: CutKind,
}

impl Cut {
    /// Whether a point satisfies this cut within `tol`.
    #[must_use]
    pub fn is_satisfied(&self, x: &[f64], tol: f64) -> bool {
        let lhs: f64 = self.terms.iter().map(|&(v, a)| a * x[v]).sum();
        match self.sense {
            Sense::Le => lhs <= self.rhs + tol,
            Sense::Ge => lhs >= self.rhs - tol,
            Sense::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// Detected cut-relevant structure of one model.
#[derive(Debug, Default)]
pub(crate) struct CutStructure {
    /// `(y column, x columns)` per verified linking row.
    linking: Vec<(usize, Vec<usize>)>,
    /// Verified `≤` knapsack rows (positive coefficients over binaries).
    le_rows: Vec<usize>,
    /// Verified `≥` knapsack rows.
    ge_rows: Vec<usize>,
}

impl CutStructure {
    pub(crate) fn has_candidates(&self) -> bool {
        !(self.linking.is_empty() && self.le_rows.is_empty() && self.ge_rows.is_empty())
    }
}

fn is_binary(model: &Model, v: usize) -> bool {
    model.var_kind(v) == Some(VarKind::Integer)
        && model
            .var_bounds(v)
            .is_some_and(|(l, u)| crate::approx::near(l, 0.0, 0.0) && crate::approx::near(u, 1.0, 0.0))
}

/// Parses row `i` as an Eq. 4 linking row; `None` when the shape is off.
fn as_linking(model: &Model, i: usize) -> Option<(usize, Vec<usize>)> {
    let row = model.row(i)?;
    if row.sense != Sense::Le || !crate::approx::is_zero(row.rhs) {
        return None;
    }
    let mut y = None;
    let mut xs = Vec::new();
    for &(v, a) in row.terms {
        if !is_binary(model, v) {
            return None;
        }
        if a < 0.0 {
            if y.is_some() || a > -1.0 {
                return None;
            }
            y = Some(v);
        } else if crate::approx::near(a, 1.0, 0.0) {
            xs.push(v);
        } else {
            return None;
        }
    }
    // One x gives the clique cut x − y <= 0 verbatim as the row: nothing
    // to disaggregate.
    match y {
        Some(y) if xs.len() >= 2 => Some((y, xs)),
        _ => None,
    }
}

/// Parses row `i` as a knapsack over binaries with positive coefficients
/// and the given sense; requires `Σa > rhs` (otherwise the row is vacuous
/// for `≤`, or admits no cover for `≥`).
fn as_knapsack(model: &Model, i: usize, sense: Sense) -> bool {
    let Some(row) = model.row(i) else { return false };
    if row.sense != sense || row.terms.len() < 2 || row.rhs <= 0.0 {
        return false;
    }
    let mut total = 0.0;
    for &(v, a) in row.terms {
        if a <= 0.0 || !is_binary(model, v) {
            return false;
        }
        total += a;
    }
    total > row.rhs
}

/// Detects the cut-relevant structure. With hints, the hinted linking and
/// budget rows are the only candidates for their families (shape-verified,
/// stale hints dropped); the Eq. 2 path rows are never hinted, so `≥`
/// knapsacks are always found by scanning. Without hints, everything is
/// scanned.
pub(crate) fn detect_structure(model: &Model, hints: Option<&StructureHints>) -> CutStructure {
    let m = model.constraint_count();
    let mut s = CutStructure::default();
    let link_candidates: Vec<usize> = match hints {
        Some(h) => h.linking_rows.clone(),
        None => (0..m).collect(),
    };
    for i in link_candidates {
        if let Some(link) = as_linking(model, i) {
            s.linking.push(link);
        }
    }
    let le_candidates: Vec<usize> = match hints {
        Some(h) => h.budget_row.into_iter().collect(),
        None => (0..m).collect(),
    };
    for i in le_candidates {
        if as_knapsack(model, i, Sense::Le) {
            s.le_rows.push(i);
        }
    }
    for i in 0..m {
        if as_knapsack(model, i, Sense::Ge) {
            s.ge_rows.push(i);
        }
    }
    s
}

/// Checks a cover for a `≤` knapsack row: every member must carry a
/// positive coefficient on a binary column, the members must overflow the
/// capacity (`Σ_S a > rhs` — otherwise all of `S` can be 1 and the "cut"
/// would slice off integer points), and the cut rhs must be exactly
/// `|S| − 1`. The deliberately off-by-one fixture in the testkit pins the
/// rejection path.
#[must_use]
pub fn cover_is_valid(model: &Model, row: usize, cover: &[usize], cut_rhs: f64) -> bool {
    let Some(r) = model.row(row) else { return false };
    if r.sense != Sense::Le || cover.is_empty() {
        return false;
    }
    let mut weight = 0.0;
    for &v in cover {
        let Some(&(_, a)) = r.terms.iter().find(|&&(w, _)| w == v) else {
            return false;
        };
        if a <= 0.0 || !is_binary(model, v) {
            return false;
        }
        weight += a;
    }
    weight > r.rhs && crate::approx::near(cut_rhs, (cover.len() - 1) as f64, 0.0)
}

/// Checks a complement cover for a `≥` knapsack row: with every member of
/// `S` at 0 the remaining columns must be unable to reach the rhs
/// (`Σ_{∉S} a < rhs`, i.e. `Σ_S a > Σa − rhs`), which makes `Σ_S x ≥ 1`
/// valid; the cut rhs must be exactly 1.
#[must_use]
pub fn ge_cover_is_valid(model: &Model, row: usize, cover: &[usize], cut_rhs: f64) -> bool {
    let Some(r) = model.row(row) else { return false };
    if r.sense != Sense::Ge || cover.is_empty() {
        return false;
    }
    let total: f64 = r.terms.iter().map(|&(_, a)| a).sum();
    let mut weight = 0.0;
    for &v in cover {
        let Some(&(_, a)) = r.terms.iter().find(|&&(w, _)| w == v) else {
            return false;
        };
        if a <= 0.0 || !is_binary(model, v) {
            return false;
        }
        weight += a;
    }
    weight > total - r.rhs && crate::approx::near(cut_rhs, 1.0, 0.0)
}

/// Separates all structure cuts violated by the relaxation point `x`,
/// deduplicated. Every emitted cover has passed its validity checker.
pub(crate) fn separate(model: &Model, s: &CutStructure, x: &[f64]) -> Vec<Cut> {
    /// Dedup key: (sense, rhs bits, sorted (var, coefficient-bits) terms).
    type CutKey = (u8, u64, Vec<(usize, u64)>);
    let mut cuts: Vec<Cut> = Vec::new();
    let mut seen: HashSet<CutKey> = HashSet::new();
    let mut push = |cut: Cut, cuts: &mut Vec<Cut>| {
        let key_terms: Vec<(usize, u64)> =
            cut.terms.iter().map(|&(v, a)| (v, a.to_bits())).collect();
        if seen.insert((cut.sense as u8, cut.rhs.to_bits(), key_terms)) {
            cuts.push(cut);
        }
    };

    for (y, xs) in &s.linking {
        for &v in xs {
            if x[v] - x[*y] > CUT_TOL {
                push(
                    Cut {
                        terms: if v < *y { vec![(v, 1.0), (*y, -1.0)] } else { vec![(*y, -1.0), (v, 1.0)] },
                        sense: Sense::Le,
                        rhs: 0.0,
                        kind: CutKind::Clique,
                    },
                    &mut cuts,
                );
            }
        }
    }
    for &i in &s.le_rows {
        if let Some(cut) = cover_from_le(model, i, x) {
            push(cut, &mut cuts);
        }
    }
    for &i in &s.ge_rows {
        if let Some(cut) = cover_from_ge(model, i, x) {
            push(cut, &mut cuts);
        }
    }
    cuts
}

/// Public separation entry point for the oracle-backed validity suite:
/// detect structure (with optional hints) and separate against `x`.
#[must_use]
pub fn separate_cuts(model: &Model, hints: Option<&StructureHints>, x: &[f64]) -> Vec<Cut> {
    separate(model, &detect_structure(model, hints), x)
}

/// Greedy minimal-ish cover for a `≤` knapsack: take columns by descending
/// relaxation value until the capacity overflows, emit when violated.
fn cover_from_le(model: &Model, row: usize, x: &[f64]) -> Option<Cut> {
    let r = model.row(row)?;
    let mut order: Vec<(usize, f64)> = r.terms.to_vec();
    order.sort_by(|&(v1, _), &(v2, _)| x[v2].total_cmp(&x[v1]).then(v1.cmp(&v2)));
    let mut weight = 0.0;
    let mut value = 0.0;
    let mut cover: Vec<usize> = Vec::new();
    for &(v, a) in &order {
        weight += a;
        value += x[v];
        cover.push(v);
        if weight > r.rhs {
            break;
        }
    }
    if weight <= r.rhs {
        return None; // no subset overflows: the row cannot yield a cover
    }
    let rhs = (cover.len() - 1) as f64;
    if value <= rhs + CUT_TOL || !cover_is_valid(model, row, &cover, rhs) {
        return None;
    }
    cover.sort_unstable();
    Some(Cut { terms: cover.into_iter().map(|v| (v, 1.0)).collect(), sense: Sense::Le, rhs, kind: CutKind::Cover })
}

/// Complement cover for a `≥` knapsack: work on `z = 1 − x`, whose
/// knapsack capacity is `Σa − rhs`; a violated `Σ_S z ≤ |S|−1` maps back
/// to `Σ_S x ≥ 1`.
fn cover_from_ge(model: &Model, row: usize, x: &[f64]) -> Option<Cut> {
    let r = model.row(row)?;
    let cap: f64 = r.terms.iter().map(|&(_, a)| a).sum::<f64>() - r.rhs;
    if cap <= 0.0 {
        return None; // presolve territory: the row pins every column to 1
    }
    let mut order: Vec<(usize, f64)> = r.terms.to_vec();
    // Descending complement value = ascending x.
    order.sort_by(|&(v1, _), &(v2, _)| x[v1].total_cmp(&x[v2]).then(v1.cmp(&v2)));
    let mut weight = 0.0;
    let mut value = 0.0;
    let mut cover: Vec<usize> = Vec::new();
    for &(v, a) in &order {
        weight += a;
        value += 1.0 - x[v];
        cover.push(v);
        if weight > cap {
            break;
        }
    }
    if weight <= cap {
        return None;
    }
    if value <= (cover.len() - 1) as f64 + CUT_TOL || !ge_cover_is_valid(model, row, &cover, 1.0) {
        return None;
    }
    cover.sort_unstable();
    Some(Cut { terms: cover.into_iter().map(|v| (v, 1.0)).collect(), sense: Sense::Ge, rhs: 1.0, kind: CutKind::Cover })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `n` binaries with zero objective.
    fn binaries(m: &mut Model, n: usize) -> Vec<usize> {
        (0..n).map(|_| m.add_binary(0.0)).collect()
    }

    #[test]
    fn linking_row_yields_clique_cuts() {
        let mut m = Model::new();
        let v = binaries(&mut m, 3); // x1, x2, y
        m.add_constraint(vec![(v[0], 1.0), (v[1], 1.0), (v[2], -2.0)], Sense::Le, 0.0).unwrap();
        let cuts = separate_cuts(&m, None, &[1.0, 0.0, 0.5]);
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].kind, CutKind::Clique);
        assert_eq!(cuts[0].terms, vec![(v[0], 1.0), (v[2], -1.0)]);
        // The fractional point violates the cut; the integer point does not.
        assert!(!cuts[0].is_satisfied(&[1.0, 0.0, 0.5], 1e-6));
        assert!(cuts[0].is_satisfied(&[1.0, 0.0, 1.0], 1e-6));
    }

    #[test]
    fn cover_cut_from_le_knapsack() {
        let mut m = Model::new();
        let v = binaries(&mut m, 4);
        m.add_constraint(
            vec![(v[0], 3.0), (v[1], 4.0), (v[2], 2.0), (v[3], 1.0)],
            Sense::Le,
            6.0,
        )
        .unwrap();
        let cuts = separate_cuts(&m, None, &[1.0, 1.0, 0.25, 0.0]);
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].kind, CutKind::Cover);
        assert_eq!(cuts[0].terms, vec![(v[0], 1.0), (v[1], 1.0)]);
        assert!((cuts[0].rhs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn complement_cover_from_ge_knapsack() {
        let mut m = Model::new();
        let v = binaries(&mut m, 3);
        m.add_constraint(vec![(v[0], 3.0), (v[1], 4.0), (v[2], 2.0)], Sense::Ge, 8.0).unwrap();
        // Without v2 the row caps at 7 < 8, so x2 >= 1 is valid; the point
        // x = (1, 1, 0) violates it.
        let cuts = separate_cuts(&m, None, &[1.0, 1.0, 0.0]);
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].sense, Sense::Ge);
        assert_eq!(cuts[0].terms, vec![(v[2], 1.0)]);
        assert!((cuts[0].rhs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn off_by_one_cover_is_rejected() {
        let mut m = Model::new();
        let v = binaries(&mut m, 3);
        let row =
            m.add_constraint(vec![(v[0], 3.0), (v[1], 4.0), (v[2], 2.0)], Sense::Le, 6.0).unwrap();
        // {v0, v1} overflows (7 > 6): rhs must be exactly |S|-1 = 1.
        assert!(cover_is_valid(&m, row, &[v[0], v[1]], 1.0));
        assert!(!cover_is_valid(&m, row, &[v[0], v[1]], 0.0)); // off by one: cuts the optimum
        assert!(!cover_is_valid(&m, row, &[v[0], v[2]], 1.0)); // 5 <= 6: not a cover
        assert!(!cover_is_valid(&m, row, &[], f64::NEG_INFINITY));
    }

    #[test]
    fn stale_hints_degrade_to_no_cuts() {
        let mut m = Model::new();
        let v = binaries(&mut m, 3);
        // A plain row that is *not* linking-shaped.
        m.add_constraint(vec![(v[0], 1.0), (v[1], 1.0)], Sense::Le, 1.0).unwrap();
        let hints = StructureHints {
            one_hot_rows: vec![],
            linking_rows: vec![0, 7],
            budget_row: Some(9),
        };
        let s = detect_structure(&m, Some(&hints));
        assert!(s.linking.is_empty());
        assert!(s.le_rows.is_empty());
        let _ = v;
    }

    #[test]
    fn non_binary_columns_disable_the_row() {
        let mut m = Model::new();
        let x = m.add_integer(0.0, 2.0, 0.0); // not binary
        let y = m.add_binary(0.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 1.0).unwrap();
        assert!(separate_cuts(&m, None, &[0.9, 0.9]).is_empty());
    }
}
