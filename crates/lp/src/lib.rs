//! A from-scratch linear-programming and mixed-integer solver.
//!
//! The paper solves its optimal FBB allocation with `lp_solve`. No
//! offline-usable ILP crate exists in this workspace's dependency budget
//! (the repro notes call the Rust ILP/EDA ecosystem "thin"), so this crate
//! implements the required solver stack:
//!
//! * [`Model`] — variables with bounds/integrality, linear constraints
//!   (`<=`, `=`, `>=`), and a linear objective (minimization);
//! * [`solve_lp`] — a **sparse revised two-phase bounded-variable primal
//!   simplex** (CSC matrix, LU-factorized basis with eta-file updates and
//!   periodic refactorization, partial pricing with a Bland anti-cycling
//!   fallback); the original dense tableau survives as [`solve_lp_dense`]
//!   for benchmarking and cross-checks;
//! * [`solve_mip`] — **best-first branch & bound** with branching
//!   priorities, incumbent seeding, a rounding probe, node/time limits
//!   (time-limited solves report the residual MIP gap, which is how the
//!   harness reproduces the paper's "ILP did not converge" entries), and
//!   dual-simplex warm starts: each child node re-optimizes from its
//!   parent's basis instead of running two-phase from scratch. On top of
//!   the tree sit a transforming [`presolve`](mod@presolve) with a
//!   bit-exact [`PostsolveMap`], root cutting planes from the FBB ILP
//!   structure ([`cuts`]), and pseudocost branching seeded by strong-branch
//!   probes — all on by default and individually switchable in
//!   [`MipOptions`].
//!
//! # Example
//!
//! ```
//! use fbb_lp::{Model, Sense, solve_mip, MipOptions};
//!
//! # fn main() -> Result<(), fbb_lp::LpError> {
//! // maximize-style knapsack, stated as minimization of the negated value:
//! // min -3a - 4b - 2c  s.t.  2a + 3b + c <= 4, binaries.
//! let mut m = Model::new();
//! let a = m.add_binary(-3.0);
//! let b = m.add_binary(-4.0);
//! let c = m.add_binary(-2.0);
//! m.add_constraint(vec![(a, 2.0), (b, 3.0), (c, 1.0)], Sense::Le, 4.0)?;
//! let sol = solve_mip(&m, &MipOptions::default(), None)?;
//! assert_eq!(sol.objective.round(), -6.0); // b and c, or a and c
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// The fault hooks exist to corrupt solver behavior on purpose (differential
// testing); a build that claims to be release-safe must not link them.
#[cfg(all(feature = "fault-inject", feature = "release-safe"))]
compile_error!(
    "feature `fault-inject` (test-only solver corruption hooks) cannot be \
     combined with `release-safe`; drop one of the two features"
);

pub mod approx;
mod audit;
mod bnb;
mod branch;
pub mod cuts;
pub mod deadline;
mod dense;
mod error;
mod factor;
#[cfg(feature = "fault-inject")]
pub mod fault;
mod model;
pub mod presolve;
mod revised;
mod simplex;
mod sparse;

pub use audit::{ModelAudit, ModelDefect, Severity, DYNAMIC_RANGE_LIMIT};
pub use bnb::{solve_mip, MipOptions, MipSolution, MipStatus};
pub use cuts::{Cut, CutKind, StructureHints};
pub use presolve::{PostsolveMap, Presolved, PresolveStats};
pub use dense::{solve_lp_dense, solve_lp_dense_with_bounds};
pub use error::LpError;
pub use model::{Model, RowView, Sense, VarKind};
pub use simplex::{solve_lp, solve_lp_with_bounds, LpSolution, LpStatus};
