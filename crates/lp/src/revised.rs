//! Sparse revised simplex over an LU-factorized basis, with a dual-simplex
//! warm-start path for branch-and-bound re-solves.
//!
//! The engine keeps the constraint matrix in CSC form ([`crate::sparse`])
//! and represents the basis only through its factorization
//! ([`crate::factor`]): one BTRAN prices a whole iteration, one FTRAN
//! produces the pivot column, and a pivot appends an eta instead of
//! row-reducing an m×(n+m) tableau. Pricing is *partial* — a rotating
//! window of columns is scanned and the best violation inside the first
//! non-empty window enters — falling back to a full smallest-index scan
//! when the anti-cycling stall counter trips (same threshold as the dense
//! engine).
//!
//! Phase 1 keeps the matrix fixed across solves (a warm-start requirement)
//! by *signing the artificials* instead of the rows: artificial `k` always
//! has coefficient `+1`, and a negative starting residual simply gives it
//! bounds `(-inf, 0]` and phase-1 cost `-1`, so the phase-1 objective is
//! the residual 1-norm either way.
//!
//! `solve_warm` re-optimizes from a parent basis after bound-only changes:
//! the parent basis stays dual feasible, so a dual simplex drives out the
//! (few) bound violations the branching introduced, then a primal pass
//! certifies optimality. Any numerical surprise — singular warm basis,
//! iteration blow-up, an "unbounded" verdict that a box-bounded child
//! cannot actually have — abandons the warm path and reports "fall back to
//! a cold solve" rather than guessing.

use std::time::Instant;

use crate::approx::{is_nonzero, is_zero};
use crate::deadline;
use crate::factor::BasisFactor;
use crate::simplex::{LpSolution, LpStatus, VarStatus, PIVOT_TOL, TOL};
use crate::sparse::{slack_bounds, CscMatrix};
use crate::{LpError, Model};

/// A resumable basis snapshot: which column sits in each basis position and
/// the bound status of every column.
#[derive(Debug, Clone)]
pub(crate) struct Basis {
    cols: Vec<usize>,
    status: Vec<VarStatus>,
}

/// Result of one engine solve, with the data branch-and-bound needs on top
/// of the plain [`LpSolution`].
#[derive(Debug, Clone)]
pub(crate) struct SolveOutcome {
    /// The solution as reported to callers.
    pub solution: LpSolution,
    /// Basis snapshot for warm-starting children; `Some` only for
    /// [`LpStatus::Optimal`].
    pub basis: Option<Basis>,
    /// Simplex iterations spent on this solve (all phases).
    pub iterations: usize,
}

/// Verdict of the dual-simplex loop.
enum DualEnd {
    /// All basic variables are back inside their bounds.
    Feasible,
    /// A violated row admits no entering column: primal infeasible.
    Infeasible,
}

/// Per-solve telemetry tallies, kept in plain fields so the hot loop never
/// touches the global sink; flushed once per `solve_*` call.
#[derive(Default)]
struct Stats {
    iterations: usize,
    pivots: usize,
    bound_flips: usize,
    bland_activations: usize,
    bland_active: bool,
    factorizations: usize,
    refactorizations: usize,
    eta_appends: usize,
}

/// Sparse revised simplex engine, reusable across many solves of the same
/// model (branch-and-bound builds it once per tree).
pub(crate) struct SparseEngine {
    mat: CscMatrix,
    n: usize,
    m: usize,
    ntot: usize,
    rhs: Vec<f64>,
    obj: Vec<f64>,
    /// Sense-derived slack bounds, fixed per row.
    slack_lo: Vec<f64>,
    slack_up: Vec<f64>,
    // Per-solve working state.
    lower: Vec<f64>,
    upper: Vec<f64>,
    status: Vec<VarStatus>,
    basis: Vec<usize>,
    xb: Vec<f64>,
    factor: BasisFactor,
    cursor: usize,
    stats: Stats,
}

impl SparseEngine {
    /// Builds the engine for a validated model.
    pub fn new(model: &Model) -> SparseEngine {
        let n = model.vars.len();
        let m = model.constraints.len();
        let ntot = n + 2 * m;
        let mat = CscMatrix::build(model);
        debug_assert_eq!(mat.cols(), ntot);
        debug_assert!(mat.nnz() >= 2 * m, "slack and artificial columns are always present");
        let artificial_basis: Vec<usize> = (0..m).map(|k| n + m + k).collect();
        let factor = BasisFactor::factorize(&mat, &artificial_basis)
            .expect("identity artificial basis cannot be singular");
        let (slack_lo, slack_up): (Vec<f64>, Vec<f64>) =
            model.constraints.iter().map(|c| slack_bounds(c.sense)).unzip();
        SparseEngine {
            mat,
            n,
            m,
            ntot,
            rhs: model.constraints.iter().map(|c| c.rhs).collect(),
            obj: model.vars.iter().map(|v| v.objective).collect(),
            slack_lo,
            slack_up,
            lower: vec![0.0; ntot],
            upper: vec![0.0; ntot],
            status: vec![VarStatus::AtLower; ntot],
            basis: artificial_basis,
            xb: vec![0.0; m],
            factor,
            cursor: 0,
            stats: Stats::default(),
        }
    }

    /// Full two-phase solve from the all-artificial start.
    ///
    /// # Errors
    ///
    /// [`LpError::IterationLimit`] on numerical cycling,
    /// [`LpError::NumericallySingular`] if the basis cannot be refactorized.
    pub fn solve_cold(
        &mut self,
        var_lower: &[f64],
        var_upper: &[f64],
        deadline: Option<Instant>,
    ) -> Result<SolveOutcome, LpError> {
        let _lp_span = fbb_telemetry::span("lp_solve");
        self.stats = Stats::default();
        let res = self.cold_inner(var_lower, var_upper, deadline);
        self.flush_stats();
        res
    }

    /// Dual-simplex re-solve from a parent basis after bound-only changes.
    /// `Ok(None)` means the warm path gave up and the caller should solve
    /// cold; it is never an answer.
    ///
    /// # Errors
    ///
    /// Same classes as [`Self::solve_cold`], though iteration-limit
    /// exhaustion is reported as `Ok(None)` so cycling in the warm path
    /// costs a fallback, not the node.
    pub fn solve_warm(
        &mut self,
        var_lower: &[f64],
        var_upper: &[f64],
        deadline: Option<Instant>,
        warm: &Basis,
    ) -> Result<Option<SolveOutcome>, LpError> {
        let _lp_span = fbb_telemetry::span("lp_solve");
        self.stats = Stats::default();
        let res = self.warm_inner(var_lower, var_upper, deadline, warm);
        self.flush_stats();
        res
    }

    fn flush_stats(&self) {
        if !fbb_telemetry::is_enabled() {
            return;
        }
        let s = &self.stats;
        fbb_telemetry::counter("lp_simplex_solves", 1);
        fbb_telemetry::counter("lp_simplex_iterations", s.iterations as u64);
        fbb_telemetry::counter("lp_simplex_pivots", s.pivots as u64);
        fbb_telemetry::counter("lp_simplex_bound_flips", s.bound_flips as u64);
        fbb_telemetry::counter("lp_simplex_bland_activations", s.bland_activations as u64);
        fbb_telemetry::counter("lp_factorizations", s.factorizations as u64);
        fbb_telemetry::counter("lp_refactorizations", s.refactorizations as u64);
        fbb_telemetry::counter("lp_eta_appends", s.eta_appends as u64);
    }

    fn iter_limit(&self) -> usize {
        #[allow(unused_mut)]
        let mut limit = 50_000 + 40 * (self.n + self.m);
        #[cfg(feature = "fault-inject")]
        if let Some(forced) = crate::fault::iteration_limit_override() {
            limit = forced;
        }
        limit
    }

    /// Phase-2 cost vector (structural objectives), with the planted
    /// pivot-sign defect applied when armed — see `dense.rs` for why the
    /// final objective still tells the truth.
    fn phase2_cost(&self) -> Vec<f64> {
        let mut c = vec![0.0; self.ntot];
        c[..self.n].copy_from_slice(&self.obj);
        #[cfg(feature = "fault-inject")]
        if crate::fault::flip_pivot_sign() {
            for v in &mut c[..self.n] {
                *v = -*v;
            }
        }
        c
    }

    fn cold_inner(
        &mut self,
        var_lower: &[f64],
        var_upper: &[f64],
        deadline: Option<Instant>,
    ) -> Result<SolveOutcome, LpError> {
        if let Some(out) = self.install_bounds(var_lower, var_upper) {
            return Ok(out);
        }
        let (n, m) = (self.n, self.m);
        self.cursor = 0;

        // Structural and slack starting statuses.
        for j in 0..n {
            self.status[j] = if self.lower[j].is_finite() {
                VarStatus::AtLower
            } else if self.upper[j].is_finite() {
                VarStatus::AtUpper
            } else {
                VarStatus::Free
            };
        }
        for k in 0..m {
            // Slacks start at 0, which is a bound for every sense.
            self.status[n + k] =
                if is_zero(self.slack_up[k]) { VarStatus::AtUpper } else { VarStatus::AtLower };
        }

        // Row residuals with every structural at its starting value; the
        // artificial for each row absorbs the residual, its bounds and
        // phase-1 cost signed so the start is feasible without touching
        // the matrix.
        let mut residual = self.rhs.clone();
        for j in 0..n {
            let v = match self.status[j] {
                VarStatus::AtLower => self.lower[j],
                VarStatus::AtUpper => self.upper[j],
                _ => 0.0,
            };
            if is_nonzero(v) {
                self.mat.scatter_col(j, -v, &mut residual);
            }
        }
        let mut c1 = vec![0.0; self.ntot];
        for (k, &res) in residual.iter().enumerate() {
            let a = n + m + k;
            if res >= 0.0 {
                self.lower[a] = 0.0;
                self.upper[a] = f64::INFINITY;
                c1[a] = 1.0;
            } else {
                self.lower[a] = f64::NEG_INFINITY;
                self.upper[a] = 0.0;
                c1[a] = -1.0;
            }
            self.basis[k] = a;
            self.status[a] = VarStatus::Basic(k);
        }
        self.xb = residual;
        self.factor = BasisFactor::factorize(&self.mat, &self.basis)
            .expect("identity artificial basis cannot be singular");
        self.stats.factorizations += 1;

        let iter_limit = self.iter_limit();

        // Phase 1: minimize the signed artificial sum (the residual 1-norm).
        match self.primal(&c1, iter_limit, deadline) {
            Ok(bounded) => debug_assert!(bounded, "phase 1 objective is bounded below by 0"),
            Err(LpError::DeadlineExceeded) => return Ok(Self::bare(LpStatus::DeadlineExceeded)),
            Err(e) => return Err(e),
        }
        let artificial_sum: f64 = (0..m)
            .filter(|&i| self.basis[i] >= n + m)
            .map(|i| self.xb[i].abs())
            .sum();
        if artificial_sum > 1e-6 {
            return Ok(Self::bare(LpStatus::Infeasible));
        }

        self.drive_out_artificials()?;
        for j in n + m..self.ntot {
            self.lower[j] = 0.0;
            self.upper[j] = 0.0;
        }

        // Phase 2: the real objective.
        let c2 = self.phase2_cost();
        match self.primal(&c2, iter_limit, deadline) {
            Ok(true) => Ok(self.extract()),
            Ok(false) => Ok(Self::bare(LpStatus::Unbounded)),
            Err(LpError::DeadlineExceeded) => Ok(Self::bare(LpStatus::DeadlineExceeded)),
            Err(e) => Err(e),
        }
    }

    fn warm_inner(
        &mut self,
        var_lower: &[f64],
        var_upper: &[f64],
        deadline: Option<Instant>,
        warm: &Basis,
    ) -> Result<Option<SolveOutcome>, LpError> {
        if let Some(out) = self.install_bounds(var_lower, var_upper) {
            return Ok(Some(out));
        }
        let (n, m) = (self.n, self.m);
        self.cursor = 0;
        // Artificials stay fixed at zero in every warm solve.
        for j in n + m..self.ntot {
            self.lower[j] = 0.0;
            self.upper[j] = 0.0;
        }
        self.basis.copy_from_slice(&warm.cols);
        self.status.copy_from_slice(&warm.status);
        // Repair nonbasic statuses the bound changes invalidated.
        for j in 0..self.ntot {
            let (lo, up) = (self.lower[j], self.upper[j]);
            self.status[j] = match self.status[j] {
                VarStatus::AtLower if !lo.is_finite() => {
                    if up.is_finite() { VarStatus::AtUpper } else { VarStatus::Free }
                }
                VarStatus::AtUpper if !up.is_finite() => {
                    if lo.is_finite() { VarStatus::AtLower } else { VarStatus::Free }
                }
                VarStatus::Free if lo > 0.0 => VarStatus::AtLower,
                VarStatus::Free if up < 0.0 => VarStatus::AtUpper,
                other => other,
            };
        }
        let Ok(factor) = BasisFactor::factorize(&self.mat, &self.basis) else {
            return Ok(None);
        };
        self.factor = factor;
        self.stats.factorizations += 1;
        self.recompute_xb();

        let iter_limit = self.iter_limit();
        let c2 = self.phase2_cost();
        match self.dual(&c2, iter_limit, deadline) {
            Ok(DualEnd::Feasible) => {}
            Ok(DualEnd::Infeasible) => return Ok(Some(Self::bare(LpStatus::Infeasible))),
            Err(LpError::DeadlineExceeded) => {
                return Ok(Some(Self::bare(LpStatus::DeadlineExceeded)))
            }
            Err(_) => return Ok(None),
        }
        // Primal finish pass: certifies optimality (and mops up any slop the
        // dual tolerances let through). A genuine "unbounded" cannot happen
        // below a parent whose relaxation was bounded, so treat it as a
        // numerical artifact and fall back.
        match self.primal(&c2, iter_limit, deadline) {
            Ok(true) => Ok(Some(self.extract())),
            Ok(false) => Ok(None),
            Err(LpError::DeadlineExceeded) => Ok(Some(Self::bare(LpStatus::DeadlineExceeded))),
            Err(_) => Ok(None),
        }
    }

    /// Installs per-solve bounds. Returns an infeasible outcome directly for
    /// an empty variable box (branching produces those).
    fn install_bounds(&mut self, var_lower: &[f64], var_upper: &[f64]) -> Option<SolveOutcome> {
        for (&lo, &up) in var_lower.iter().zip(var_upper) {
            if lo > up {
                return Some(Self::bare(LpStatus::Infeasible));
            }
        }
        self.lower[..self.n].copy_from_slice(var_lower);
        self.upper[..self.n].copy_from_slice(var_upper);
        for k in 0..self.m {
            self.lower[self.n + k] = self.slack_lo[k];
            self.upper[self.n + k] = self.slack_up[k];
        }
        None
    }

    fn bare(status: LpStatus) -> SolveOutcome {
        SolveOutcome {
            solution: LpSolution { status, x: vec![], objective: 0.0 },
            basis: None,
            iterations: 0,
        }
    }

    fn extract(&self) -> SolveOutcome {
        let mut x = vec![0.0; self.n];
        for (j, xj) in x.iter_mut().enumerate() {
            *xj = self.value_of(j).clamp(self.lower[j], self.upper[j]);
        }
        let objective: f64 = self.obj.iter().zip(&x).map(|(c, v)| c * v).sum();
        SolveOutcome {
            solution: LpSolution { status: LpStatus::Optimal, x, objective },
            basis: Some(Basis { cols: self.basis.clone(), status: self.status.clone() }),
            iterations: self.stats.iterations,
        }
    }

    fn value_of(&self, j: usize) -> f64 {
        match self.status[j] {
            VarStatus::Basic(row) => self.xb[row],
            VarStatus::AtLower => self.lower[j],
            VarStatus::AtUpper => self.upper[j],
            VarStatus::Free => 0.0,
        }
    }

    fn is_fixed(&self, j: usize) -> bool {
        self.lower[j] >= self.upper[j] - PIVOT_TOL
            && self.lower[j].is_finite()
            && self.upper[j].is_finite()
    }

    /// Recomputes basic values `x_B = B^{-1}(rhs - N x_N)` from scratch;
    /// called after every (re)factorization to shed accumulated drift.
    fn recompute_xb(&mut self) {
        let mut r = self.rhs.clone();
        for j in 0..self.ntot {
            if !matches!(self.status[j], VarStatus::Basic(_)) {
                let v = self.value_of(j);
                if is_nonzero(v) {
                    self.mat.scatter_col(j, -v, &mut r);
                }
            }
        }
        self.factor.ftran(&mut r);
        self.xb = r;
    }

    /// Dual variables `y = B^{-T} c_B` in row space (skipping the solve when
    /// every basic cost is zero, as in most of phase 1).
    fn duals(&self, c: &[f64]) -> (Vec<f64>, bool) {
        let mut y = vec![0.0; self.m];
        let mut any = false;
        for (pos, &j) in self.basis.iter().enumerate() {
            y[pos] = c[j];
            any |= is_nonzero(c[j]);
        }
        if any {
            self.factor.btran(&mut y);
        }
        (y, any)
    }

    fn reduced_cost(&self, j: usize, c: &[f64], y: &[f64], y_nonzero: bool) -> f64 {
        if y_nonzero {
            c[j] - self.mat.col_dot(j, y)
        } else {
            c[j]
        }
    }

    /// Books the basis change `position r <- column e` whose FTRAN image is
    /// `w`, then refactorizes if the eta file is full (or, in the rare case
    /// the eta pivot is unusable, immediately).
    fn install_pivot(&mut self, r: usize, e: usize, w: &[f64]) -> Result<(), LpError> {
        self.basis[r] = e;
        self.status[e] = VarStatus::Basic(r);
        let pushed = self.factor.push_eta(r, w).is_ok();
        if pushed {
            self.stats.eta_appends += 1;
        }
        if !pushed || self.factor.should_refactor() {
            match BasisFactor::factorize(&self.mat, &self.basis) {
                Ok(f) => {
                    self.factor = f;
                    self.stats.factorizations += 1;
                    self.stats.refactorizations += 1;
                    self.recompute_xb();
                }
                // With a valid eta we may keep the (long but correct)
                // product form and try again next pivot; without one the
                // basis representation is gone.
                Err(_) if pushed => {}
                Err(_) => return Err(LpError::NumericallySingular),
            }
        }
        Ok(())
    }

    /// Bookkeeping shared by both loops: iteration count, iteration limit,
    /// and the amortized (every 64 iterations) deadline poll.
    fn tick(&mut self, iter_limit: usize, deadline: Option<Instant>) -> Result<(), LpError> {
        self.stats.iterations += 1;
        if self.stats.iterations > iter_limit {
            return Err(LpError::IterationLimit);
        }
        if let Some(d) = deadline {
            if (self.stats.iterations == 1 || self.stats.iterations.is_multiple_of(64))
                && deadline::reached(d)
            {
                return Err(LpError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Partial pricing: scans rotating windows of columns and returns the
    /// best violation in the first window that has one; under Bland mode,
    /// a full smallest-index scan. Returns `(column, direction)`.
    fn price(&mut self, c: &[f64], y: &[f64], y_nonzero: bool, bland: bool) -> Option<(usize, f64)> {
        let window = 64.max(self.ntot / 8);
        let mut best: Option<(usize, f64, f64)> = None;
        for scanned in 0..self.ntot {
            let j = if bland { scanned } else { (self.cursor + scanned) % self.ntot };
            if matches!(self.status[j], VarStatus::Basic(_)) || self.is_fixed(j) {
                continue;
            }
            let d = self.reduced_cost(j, c, y, y_nonzero);
            let (viol, dir) = match self.status[j] {
                VarStatus::AtLower => (-d, 1.0),
                VarStatus::AtUpper => (d, -1.0),
                VarStatus::Free => (d.abs(), if d > 0.0 { -1.0 } else { 1.0 }),
                VarStatus::Basic(_) => unreachable!(),
            };
            if viol > TOL {
                if bland {
                    return Some((j, dir));
                }
                match best {
                    Some((_, b, _)) if b >= viol => {}
                    _ => best = Some((j, viol, dir)),
                }
            }
            if !bland && (scanned + 1) % window == 0 {
                if let Some((bj, _, bdir)) = best {
                    self.cursor = (j + 1) % self.ntot;
                    return Some((bj, bdir));
                }
            }
        }
        best.map(|(bj, _, bdir)| {
            self.cursor = (bj + 1) % self.ntot;
            (bj, bdir)
        })
    }

    /// Primal bounded-variable simplex for cost vector `c` until optimality.
    /// `Ok(false)` means unbounded under `c`; error semantics match
    /// [`Self::tick`].
    fn primal(
        &mut self,
        c: &[f64],
        iter_limit: usize,
        deadline: Option<Instant>,
    ) -> Result<bool, LpError> {
        let mut stall = 0usize;
        let mut w = vec![0.0f64; self.m];
        loop {
            self.tick(iter_limit, deadline)?;
            let bland = stall > 64 + self.m;
            if bland && !self.stats.bland_active {
                self.stats.bland_activations += 1;
            }
            self.stats.bland_active = bland;

            let (y, y_nonzero) = self.duals(c);
            let Some((e, dir)) = self.price(c, &y, y_nonzero, bland) else {
                return Ok(true); // optimal for this cost vector
            };

            // Pivot column through the basis inverse.
            w.iter_mut().for_each(|v| *v = 0.0);
            self.mat.scatter_col(e, 1.0, &mut w);
            self.factor.ftran(&mut w);

            // Ratio test: entering moves by t >= 0 in direction `dir`;
            // basic i changes by -dir * w[i] * t.
            let mut t_best = if self.lower[e].is_finite() && self.upper[e].is_finite() {
                self.upper[e] - self.lower[e]
            } else {
                f64::INFINITY
            };
            let mut leave: Option<(usize, VarStatus)> = None;
            for (i, &wi) in w.iter().enumerate() {
                let coef = dir * wi;
                let (ratio, hit) = if coef > PIVOT_TOL {
                    // basic decreases toward its lower bound
                    let lb = self.lower[self.basis[i]];
                    if !lb.is_finite() {
                        continue;
                    }
                    ((self.xb[i] - lb) / coef, VarStatus::AtLower)
                } else if coef < -PIVOT_TOL {
                    let ub = self.upper[self.basis[i]];
                    if !ub.is_finite() {
                        continue;
                    }
                    ((ub - self.xb[i]) / -coef, VarStatus::AtUpper)
                } else {
                    continue;
                };
                let ratio = ratio.max(0.0);
                if ratio < t_best - PIVOT_TOL
                    || (bland
                        && (ratio - t_best).abs() <= PIVOT_TOL
                        && leave
                            .as_ref()
                            .is_some_and(|&(r, _)| self.basis[i] < self.basis[r]))
                {
                    t_best = ratio;
                    leave = Some((i, hit));
                }
            }

            if t_best.is_infinite() {
                return Ok(false); // unbounded ray
            }
            stall = if t_best > TOL { 0 } else { stall + 1 };

            match leave {
                None => {
                    // Bound flip: entering crosses to its opposite bound.
                    self.stats.bound_flips += 1;
                    for (i, &wi) in w.iter().enumerate() {
                        self.xb[i] -= dir * wi * t_best;
                    }
                    self.status[e] = match self.status[e] {
                        VarStatus::AtLower => VarStatus::AtUpper,
                        VarStatus::AtUpper => VarStatus::AtLower,
                        other => other, // free vars cannot bound-flip (t is infinite)
                    };
                }
                Some((r, hit)) => {
                    self.stats.pivots += 1;
                    let entering_value = self.value_of(e) + dir * t_best;
                    for (i, &wi) in w.iter().enumerate() {
                        if i != r {
                            self.xb[i] -= dir * wi * t_best;
                        }
                    }
                    self.xb[r] = entering_value;
                    self.status[self.basis[r]] = hit;
                    self.install_pivot(r, e, &w)?;
                }
            }
        }
    }

    /// Dual simplex: restores primal feasibility after bound changes while
    /// preserving dual feasibility. Entering is chosen by the standard dual
    /// ratio test over the leaving row; no eligible column is a primal
    /// infeasibility certificate for the row, independent of the costs.
    fn dual(
        &mut self,
        c: &[f64],
        iter_limit: usize,
        deadline: Option<Instant>,
    ) -> Result<DualEnd, LpError> {
        let mut rho = vec![0.0f64; self.m];
        let mut w = vec![0.0f64; self.m];
        loop {
            self.tick(iter_limit, deadline)?;

            // Leaving row: largest bound violation among the basics.
            let mut leave: Option<(usize, f64, f64)> = None; // (row, viol, sigma)
            for (i, &j) in self.basis.iter().enumerate() {
                let (viol, sigma) = if self.xb[i] > self.upper[j] + TOL {
                    (self.xb[i] - self.upper[j], 1.0)
                } else if self.xb[i] < self.lower[j] - TOL {
                    (self.lower[j] - self.xb[i], -1.0)
                } else {
                    continue;
                };
                match leave {
                    Some((_, best, _)) if best >= viol => {}
                    _ => leave = Some((i, viol, sigma)),
                }
            }
            let Some((r, _, sigma)) = leave else {
                return Ok(DualEnd::Feasible);
            };

            // Row r of B^{-1}A via one BTRAN, plus current duals for the
            // ratio numerators.
            rho.iter_mut().for_each(|v| *v = 0.0);
            rho[r] = 1.0;
            self.factor.btran(&mut rho);
            let (y, y_nonzero) = self.duals(c);

            let mut best: Option<(usize, f64, f64)> = None; // (col, ratio, |alpha|)
            for j in 0..self.ntot {
                if matches!(self.status[j], VarStatus::Basic(_)) || self.is_fixed(j) {
                    continue;
                }
                let alpha = self.mat.col_dot(j, &rho);
                let sa = sigma * alpha;
                let eligible = match self.status[j] {
                    VarStatus::AtLower => sa > PIVOT_TOL,
                    VarStatus::AtUpper => sa < -PIVOT_TOL,
                    VarStatus::Free => sa.abs() > PIVOT_TOL,
                    VarStatus::Basic(_) => unreachable!(),
                };
                if !eligible {
                    continue;
                }
                let d = self.reduced_cost(j, c, y.as_slice(), y_nonzero);
                let ratio = (d / sa).max(0.0);
                let better = match best {
                    None => true,
                    Some((_, br, ba)) => {
                        ratio < br - PIVOT_TOL
                            || ((ratio - br).abs() <= PIVOT_TOL && alpha.abs() > ba)
                    }
                };
                if better {
                    best = Some((j, ratio, alpha.abs()));
                }
            }
            let Some((e, _, _)) = best else {
                return Ok(DualEnd::Infeasible);
            };

            w.iter_mut().for_each(|v| *v = 0.0);
            self.mat.scatter_col(e, 1.0, &mut w);
            self.factor.ftran(&mut w);
            if w[r].abs() <= PIVOT_TOL {
                // Factor drift made the chosen pivot unusable; rebuild the
                // factorization and retry the row.
                match BasisFactor::factorize(&self.mat, &self.basis) {
                    Ok(f) => {
                        self.factor = f;
                        self.stats.factorizations += 1;
                        self.stats.refactorizations += 1;
                        self.recompute_xb();
                        continue;
                    }
                    Err(_) => return Err(LpError::NumericallySingular),
                }
            }

            self.stats.pivots += 1;
            let leaving = self.basis[r];
            let bound =
                if sigma > 0.0 { self.upper[leaving] } else { self.lower[leaving] };
            let delta = (self.xb[r] - bound) / w[r];
            let entering_value = self.value_of(e) + delta;
            for (i, &wi) in w.iter().enumerate() {
                if i != r {
                    self.xb[i] -= wi * delta;
                }
            }
            self.xb[r] = entering_value;
            self.status[leaving] =
                if sigma > 0.0 { VarStatus::AtUpper } else { VarStatus::AtLower };
            self.install_pivot(r, e, &w)?;
        }
    }

    /// Replaces any artificial still basic after phase 1 with a structural
    /// or slack column (degenerate pivots); rows where none qualifies are
    /// redundant and keep their artificial basic, pinned by [0,0] bounds.
    fn drive_out_artificials(&mut self) -> Result<(), LpError> {
        let art_start = self.n + self.m;
        let mut rho = vec![0.0f64; self.m];
        let mut w = vec![0.0f64; self.m];
        for r in 0..self.m {
            if self.basis[r] < art_start {
                continue;
            }
            rho.iter_mut().for_each(|v| *v = 0.0);
            rho[r] = 1.0;
            self.factor.btran(&mut rho);
            let candidate = (0..art_start).find(|&j| {
                !matches!(self.status[j], VarStatus::Basic(_))
                    && self.mat.col_dot(j, &rho).abs() > 1e-6
            });
            if let Some(e) = candidate {
                w.iter_mut().for_each(|v| *v = 0.0);
                self.mat.scatter_col(e, 1.0, &mut w);
                self.factor.ftran(&mut w);
                if w[r].abs() <= PIVOT_TOL {
                    continue; // drifted below pivotability; row stays redundant
                }
                let leaving = self.basis[r];
                // Degenerate pivot: the artificial sits at 0, so the
                // entering column keeps its current (bound) value.
                self.status[leaving] = if is_zero(self.upper[leaving]) {
                    VarStatus::AtUpper
                } else {
                    VarStatus::AtLower
                };
                self.xb[r] = self.value_of(e);
                self.install_pivot(r, e, &w)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sense;

    fn bounds_of(model: &Model) -> (Vec<f64>, Vec<f64>) {
        (model.vars.iter().map(|v| v.lower).collect(), model.vars.iter().map(|v| v.upper).collect())
    }

    fn cold(model: &Model) -> SolveOutcome {
        let (lo, up) = bounds_of(model);
        SparseEngine::new(model).solve_cold(&lo, &up, None).unwrap()
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn textbook_le_problem_matches_known_optimum() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, -3.0);
        let y = m.add_continuous(0.0, f64::INFINITY, -5.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Le, 4.0).unwrap();
        m.add_constraint(vec![(y, 2.0)], Sense::Le, 12.0).unwrap();
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0).unwrap();
        let out = cold(&m);
        assert_eq!(out.solution.status, LpStatus::Optimal);
        assert_close(out.solution.objective, -36.0);
        assert!(out.basis.is_some());
        assert!(out.iterations > 0);
    }

    #[test]
    fn negative_residual_rows_use_signed_artificials() {
        // -x <= -3 gives a negative starting residual; the signed phase 1
        // must still find x = 3.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, -1.0)], Sense::Le, -3.0).unwrap();
        let out = cold(&m);
        assert_eq!(out.solution.status, LpStatus::Optimal);
        assert_close(out.solution.objective, 3.0);
    }

    #[test]
    fn warm_solve_after_bound_tightening_matches_cold() {
        // Knapsack-ish relaxation; branch x0 to [1, 1] and compare warm
        // against cold.
        let mut m = Model::new();
        let a = m.add_continuous(0.0, 1.0, -5.0);
        let b = m.add_continuous(0.0, 1.0, -4.0);
        let c = m.add_continuous(0.0, 1.0, -3.0);
        m.add_constraint(vec![(a, 2.0), (b, 3.0), (c, 1.0)], Sense::Le, 3.5).unwrap();
        let (lo, up) = bounds_of(&m);

        let mut engine = SparseEngine::new(&m);
        let parent = engine.solve_cold(&lo, &up, None).unwrap();
        assert_eq!(parent.solution.status, LpStatus::Optimal);
        let basis = parent.basis.unwrap();

        let child_lo = vec![1.0, 0.0, 0.0];
        let warm = engine
            .solve_warm(&child_lo, &up, None, &basis)
            .unwrap()
            .expect("warm path should handle a single bound change");
        let cold = engine.solve_cold(&child_lo, &up, None).unwrap();
        assert_eq!(warm.solution.status, cold.solution.status);
        assert_close(warm.solution.objective, cold.solution.objective);
    }

    #[test]
    fn warm_solve_detects_child_infeasibility() {
        // x + y >= 1.5 with both branched to [0, 0] is empty.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0, 1.0);
        let y = m.add_continuous(0.0, 1.0, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 1.5).unwrap();
        let (lo, up) = bounds_of(&m);
        let mut engine = SparseEngine::new(&m);
        let parent = engine.solve_cold(&lo, &up, None).unwrap();
        let basis = parent.basis.unwrap();
        let warm = engine
            .solve_warm(&lo, &[0.0, 0.0], None, &basis)
            .unwrap()
            .expect("dual simplex certifies infeasibility without fallback");
        assert_eq!(warm.solution.status, LpStatus::Infeasible);
    }

    #[test]
    fn refactorization_kicks_in_on_long_solves() {
        // A chain model long enough to exceed the eta budget.
        let mut m = Model::new();
        let n = 80;
        let vars: Vec<usize> = (0..n).map(|i| m.add_continuous(0.0, 10.0, -((i % 7) as f64) - 1.0)).collect();
        for pair in vars.windows(2) {
            m.add_constraint(vec![(pair[0], 1.0), (pair[1], 1.0)], Sense::Le, 3.0).unwrap();
        }
        m.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(), Sense::Le, 40.0)
            .unwrap();
        let (lo, up) = bounds_of(&m);
        let mut engine = SparseEngine::new(&m);
        let out = engine.solve_cold(&lo, &up, None).unwrap();
        assert_eq!(out.solution.status, LpStatus::Optimal);
        assert!(engine.stats.pivots > 0);
    }

    #[test]
    fn empty_box_short_circuits_to_infeasible() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 1.0).unwrap();
        let out = SparseEngine::new(&m).solve_cold(&[4.0], &[3.0], None).unwrap();
        assert_eq!(out.solution.status, LpStatus::Infeasible);
    }
}
