//! The deep rules FA007–FA011: everything that needs the parser, the call
//! graph, or cross-file state rather than a single token window.
//!
//! * **FA007** — panic-reachability: no function reachable from a declared
//!   trust-boundary entry (see `audit.toml`) may transitively reach
//!   `panic!`-family macros, `.unwrap()`/`.expect(`, or (on manifest-scoped
//!   decode paths) bare slice indexing.
//! * **FA008** — `as` narrowing casts on codec paths.
//! * **FA009** — bare slice indexing on decode paths.
//! * **FA010** — `Condvar::wait` outside a predicate loop, and lock guards
//!   held across blocking calls, in `crates/serve`.
//! * **FA011** — spec-constant drift between `docs/FORMAT.md` /
//!   `docs/PROTOCOL.md` and the source constants implementing them.

use std::fs;
use std::io;
use std::path::Path;

use crate::callgraph::CallGraph;
use crate::context::FileCtx;
use crate::manifest::Manifest;
use crate::parse::{ParsedFile, NARROW_CAST_TARGETS};
use crate::report::{DeepStats, Finding, TrustEntry};

/// The documentation files FA011 cross-checks, relative to the workspace
/// root.
pub const SPEC_DOCS: [&str; 2] = ["docs/FORMAT.md", "docs/PROTOCOL.md"];

/// One named numeric constant extracted from a spec document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocConst {
    /// The `SCREAMING_CASE` name, as it must appear as a `const` in source.
    pub name: String,
    /// The documented value.
    pub value: u64,
    /// Which spec document declared it.
    pub doc: String,
    /// 1-based line in that document.
    pub line: u32,
}

/// Extracts named constants from the spec documents under `root`.
///
/// Two shapes participate: `` `NAME` = <number> `` prose (the normative
/// constants tables) and opcode-style table rows `| 0xNN | NAME | … |`.
///
/// # Errors
///
/// I/O errors reading a spec document. Missing documents are skipped (a
/// fixture workspace need not carry docs).
pub fn doc_constants(root: &Path) -> io::Result<Vec<DocConst>> {
    let mut out = Vec::new();
    for doc in SPEC_DOCS {
        let path = root.join(doc);
        if !path.is_file() {
            continue;
        }
        let text = fs::read_to_string(&path)?;
        for (lineno, line) in text.lines().enumerate() {
            let line_no = u32::try_from(lineno + 1).unwrap_or(u32::MAX);
            scan_backtick_consts(line, doc, line_no, &mut out);
            scan_opcode_row(line, doc, line_no, &mut out);
        }
    }
    // First declaration wins; a doc may restate a constant in prose.
    out.sort_by(|a, b| (&a.name, &a.doc, a.line).cmp(&(&b.name, &b.doc, b.line)));
    out.dedup_by(|a, b| a.name == b.name);
    Ok(out)
}

/// `` `NAME` = 16777216 `` (optionally with `**` emphasis around `=`).
fn scan_backtick_consts(line: &str, doc: &str, line_no: u32, out: &mut Vec<DocConst>) {
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        let name = &after[..close];
        let tail = &after[close + 1..];
        if is_const_name(name) {
            let tail = tail.trim_start().trim_start_matches('*').trim_start();
            if let Some(eq_rest) = tail.strip_prefix('=') {
                let eq_rest = eq_rest.trim_start().trim_start_matches('*').trim_start();
                if let Some(value) = leading_number(eq_rest) {
                    out.push(DocConst {
                        name: name.to_owned(),
                        value,
                        doc: doc.to_owned(),
                        line: line_no,
                    });
                }
            }
        }
        rest = tail;
    }
}

/// `| 0x01 | PING | … |` — opcode/status tables.
fn scan_opcode_row(line: &str, doc: &str, line_no: u32, out: &mut Vec<DocConst>) {
    let cells: Vec<&str> = line.split('|').map(str::trim).collect();
    for pair in cells.windows(2) {
        let (value_cell, name_cell) = (pair[0], pair[1]);
        if !value_cell.starts_with("0x") {
            continue;
        }
        let Some(value) = leading_number(value_cell) else { continue };
        // The name may be backticked in the table.
        let name = name_cell.trim_matches('`');
        if is_const_name(name) && value_cell.len() == value_cell.trim().len() {
            out.push(DocConst {
                name: name.to_owned(),
                value,
                doc: doc.to_owned(),
                line: line_no,
            });
        }
    }
}

fn is_const_name(s: &str) -> bool {
    s.len() >= 2
        && s.chars().next().map(|c| c.is_ascii_uppercase()).unwrap_or(false)
        && s.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Parses the number at the head of `s` (`16777216 bytes`, `0xCBF43926.`).
fn leading_number(s: &str) -> Option<u64> {
    let token: String = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        let digits: String = hex.chars().take_while(char::is_ascii_hexdigit).collect();
        if digits.is_empty() {
            return None;
        }
        return u64::from_str_radix(&digits, 16).ok();
    } else {
        s.chars().take_while(|c| c.is_ascii_digit() || *c == '_').filter(|&c| c != '_').collect()
    };
    if token.is_empty() {
        return None;
    }
    token.parse().ok()
}

fn excluded(manifest: &Manifest, rel_path: &str) -> bool {
    manifest.exclude.iter().any(|e| e == rel_path)
}

fn in_scope(paths: &[String], rel_path: &str) -> bool {
    paths.iter().any(|p| rel_path.starts_with(p.as_str()))
}

fn push(out: &mut Vec<Finding>, rule: &'static str, path: &str, line: u32, col: u32, msg: String) {
    out.push(Finding {
        rule,
        path: path.to_owned(),
        line,
        col,
        message: msg,
        waived: false,
        waiver_reason: None,
    });
}

/// Runs FA007–FA011 over the parsed workspace. `entries` are the FA007
/// roots (manifest entries, or a fixture's declared entries);
/// `check_missing_consts` arms the FA011 documented-but-unimplemented check
/// (off in fixtures mode, where only planted files are scanned).
pub fn check_deep(
    ctxs: &[FileCtx],
    parsed: &[ParsedFile],
    manifest: &Manifest,
    entries: &[String],
    docs: &[DocConst],
    check_missing_consts: bool,
) -> (Vec<Finding>, DeepStats) {
    let mut out = Vec::new();
    let graph = CallGraph::build(parsed);

    // FA007 — panic reachability from the trust boundary.
    let mut trust = Vec::new();
    let mut reachable_panics = 0u64;
    for entry in entries {
        let roots = graph.resolve_entry(entry);
        if roots.is_empty() {
            push(
                &mut out,
                "FA007",
                "audit.toml",
                1,
                1,
                format!("trust-boundary entry `{entry}` resolves to no workspace function"),
            );
            trust.push(TrustEntry { entry: entry.clone(), panic_free: false });
            continue;
        }
        let reach = graph.reachable_from(&roots);
        let mut clean = true;
        for (&fn_idx, chain) in &reach {
            let info = &graph.fns[fn_idx].info;
            let index_scoped = in_scope(&manifest.index_paths, &info.rel_path)
                && !excluded(manifest, &info.rel_path);
            for src in graph.panic_sources(fn_idx, index_scoped) {
                clean = false;
                reachable_panics += 1;
                let chain_text: Vec<&str> = chain
                    .iter()
                    .map(|&i| graph.fns[i].info.name.as_str())
                    .collect();
                push(
                    &mut out,
                    "FA007",
                    &info.rel_path,
                    src.line,
                    src.col,
                    format!(
                        "{} reachable from trust-boundary entry `{entry}` via {}",
                        src.what,
                        chain_text.join(" → "),
                    ),
                );
            }
        }
        trust.push(TrustEntry { entry: entry.clone(), panic_free: clean });
    }

    // FA008/FA009/FA010 — per-file site rules.
    for (ctx, file) in ctxs.iter().zip(parsed) {
        let rel = ctx.rel_path.as_str();
        let is_excluded = excluded(manifest, rel);
        let casts_in = in_scope(&manifest.cast_paths, rel) && !is_excluded;
        let index_in = in_scope(&manifest.index_paths, rel) && !is_excluded;
        let serve_in = rel.starts_with("crates/serve/src");
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            if casts_in {
                for c in &f.casts {
                    if NARROW_CAST_TARGETS.contains(&c.target.as_str()) {
                        push(
                            &mut out,
                            "FA008",
                            rel,
                            c.line,
                            c.col,
                            format!("unchecked `as {}` narrowing cast on a codec path", c.target),
                        );
                    }
                }
            }
            if index_in {
                for s in &f.indexes {
                    push(
                        &mut out,
                        "FA009",
                        rel,
                        s.line,
                        s.col,
                        format!("bare slice index {} on a decode path", s.what),
                    );
                }
            }
            if serve_in {
                for w in &f.waits {
                    if w.loop_depth == 0 {
                        push(
                            &mut out,
                            "FA010",
                            rel,
                            w.line,
                            w.col,
                            format!("`.{}(…)` outside a predicate loop", w.what),
                        );
                    }
                }
                for g in &f.guard_blocking {
                    push(&mut out, "FA010", rel, g.line, g.col, format!("blocking call {}", g.what));
                }
            }
        }
    }

    // FA011 — spec-constant drift.
    for dc in docs {
        let mut found = false;
        for (ctx, file) in ctxs.iter().zip(parsed) {
            for (name, value, line) in &file.consts {
                if name == &dc.name {
                    found = true;
                    if value != &dc.value {
                        push(
                            &mut out,
                            "FA011",
                            &ctx.rel_path,
                            *line,
                            1,
                            format!(
                                "const {name} = {value} drifts from {} (documented {} at line {})",
                                dc.doc, dc.value, dc.line
                            ),
                        );
                    }
                }
            }
        }
        if !found && check_missing_consts {
            push(
                &mut out,
                "FA011",
                &dc.doc,
                dc.line,
                1,
                format!(
                    "documented constant `{}` = {} has no evaluable `const {}` in source",
                    dc.name, dc.value, dc.name
                ),
            );
        }
    }

    out.sort_by(|a, b| (&a.path, a.line, a.rule, a.col).cmp(&(&b.path, b.line, b.rule, b.col)));
    out.dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);

    let stats = DeepStats {
        parse_fns: graph.fns.len() as u64,
        callgraph_edges: graph.edge_count,
        panic_reachable: reachable_panics,
        entries: trust,
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileClass;
    use crate::parse::parse_file;

    fn manifest() -> Manifest {
        Manifest {
            entries: vec!["fbb_x::entry".into()],
            index_paths: vec!["crates/db/src".into(), "crates/serve/src".into()],
            cast_paths: vec!["crates/db/src".into(), "crates/serve/src".into()],
            exclude: vec!["crates/db/src/crc.rs".into()],
        }
    }

    fn run(files: &[(&str, &str)], entries: &[&str], docs: &[DocConst]) -> (Vec<Finding>, DeepStats) {
        let ctxs: Vec<FileCtx> = files
            .iter()
            .map(|(p, s)| FileCtx::analyze(p, FileClass::Library, false, s))
            .collect();
        let parsed: Vec<ParsedFile> = ctxs.iter().map(|c| parse_file(c, "fbb_x")).collect();
        let entries: Vec<String> = entries.iter().map(|s| (*s).to_owned()).collect();
        check_deep(&ctxs, &parsed, &manifest(), &entries, docs, true)
    }

    #[test]
    fn fa007_flags_transitive_unwrap_and_proves_clean_entries() {
        let (findings, stats) = run(
            &[(
                "crates/db/src/lib.rs",
                "pub fn entry(b: &[u8]) -> u8 { helper(b) }\n\
                 fn helper(b: &[u8]) -> u8 { b.first().copied().unwrap() }\n\
                 pub fn clean(b: &[u8]) -> usize { b.len() }",
            )],
            &["fbb_x::entry", "fbb_x::clean"],
            &[],
        );
        assert!(findings.iter().any(|f| f.rule == "FA007" && f.message.contains("entry → helper")));
        assert_eq!(stats.entries.len(), 2);
        assert!(!stats.entries[0].panic_free);
        assert!(stats.entries[1].panic_free);
        assert!(stats.panic_reachable >= 1);
    }

    #[test]
    fn fa007_unresolvable_entry_is_a_violation() {
        let (findings, _) = run(&[("crates/db/src/lib.rs", "pub fn f() {}")], &["nope::missing"], &[]);
        assert!(findings.iter().any(|f| f.rule == "FA007" && f.path == "audit.toml"));
    }

    #[test]
    fn fa008_fa009_respect_scope_and_exclusions() {
        let (findings, _) = run(
            &[
                ("crates/db/src/wire.rs", "pub fn f(v: u64, b: &[u8]) -> u8 { b[0] + v as u8 }"),
                ("crates/db/src/crc.rs", "pub fn g(t: &[u32], b: u64) -> u32 { t[(b & 0xFF) as usize] }"),
                ("crates/lp/src/x.rs", "pub fn h(v: u64, b: &[u8]) -> u8 { b[0] + v as u8 }"),
            ],
            &["fbb_x::f"],
            &[],
        );
        assert!(findings.iter().any(|f| f.rule == "FA008" && f.path == "crates/db/src/wire.rs"));
        assert!(findings.iter().any(|f| f.rule == "FA009" && f.path == "crates/db/src/wire.rs"));
        assert!(!findings.iter().any(|f| f.path == "crates/db/src/crc.rs"));
        assert!(!findings.iter().any(|f| f.rule != "FA007" && f.path == "crates/lp/src/x.rs"));
    }

    #[test]
    fn fa010_wait_outside_loop_only_in_serve() {
        let src = "pub fn f(cv: &Condvar, g: G) { let _ = cv.wait(g); }";
        let (findings, _) = run(
            &[("crates/serve/src/server.rs", src), ("crates/db/src/design.rs", src)],
            &["fbb_x::none"],
            &[],
        );
        let fa010: Vec<&Finding> = findings.iter().filter(|f| f.rule == "FA010").collect();
        assert_eq!(fa010.len(), 1);
        assert_eq!(fa010[0].path, "crates/serve/src/server.rs");
    }

    #[test]
    fn fa011_flags_drift_and_missing() {
        let docs = vec![
            DocConst { name: "MAX_FRAME_LEN".into(), value: 16777216, doc: "docs/PROTOCOL.md".into(), line: 4 },
            DocConst { name: "GHOST".into(), value: 7, doc: "docs/FORMAT.md".into(), line: 9 },
        ];
        let (findings, _) = run(
            &[("crates/serve/src/protocol.rs", "pub const MAX_FRAME_LEN: u32 = 4096;")],
            &["fbb_x::none"],
            &docs,
        );
        assert!(findings
            .iter()
            .any(|f| f.rule == "FA011" && f.path == "crates/serve/src/protocol.rs"));
        assert!(findings.iter().any(|f| f.rule == "FA011" && f.path == "docs/FORMAT.md"));
    }

    #[test]
    fn doc_extraction_shapes() {
        let mut out = Vec::new();
        scan_backtick_consts("`N` must not exceed `MAX_FRAME_LEN` = 16777216 bytes (16 MiB)",
            "docs/PROTOCOL.md", 44, &mut out);
        scan_opcode_row("| 0x02 | LOAD | raw `.fbb` bytes | `u64` hash |", "docs/PROTOCOL.md", 91, &mut out);
        scan_backtick_consts("Check value: `crc32(\"123456789\") = 0xCBF43926`.", "d", 1, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], DocConst { name: "MAX_FRAME_LEN".into(), value: 16777216, doc: "docs/PROTOCOL.md".into(), line: 44 });
        assert_eq!(out[1].name, "LOAD");
        assert_eq!(out[1].value, 2);
    }
}
