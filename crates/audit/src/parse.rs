//! Token-tree/item parser: the layer between the lexer and the deep rules.
//!
//! This is not a Rust grammar — it is a total, never-panicking structural
//! pass that recovers exactly what the deep rules need from the token
//! stream: `fn` items with their crate/module/impl-qualified names, the
//! call / method-call / macro / index / cast sites inside each body, and
//! enough block structure to know whether a `Condvar::wait` sits inside a
//! predicate loop or a lock guard is still live at a blocking call.
//!
//! Everything here is heuristic by design (see DESIGN.md §5l for the
//! soundness caveats); on arbitrary garbage input it degrades to finding
//! fewer items, never to a panic — `tests/proptest_parse.rs` pins that.

use crate::context::FileCtx;
use crate::lexer::TokenKind;

/// A source location (1-based), plus a short description of what sits there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What the site is (`\`.unwrap()\``, `\`panic!\``, the indexed
    /// expression head, the cast target, …).
    pub what: String,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name (last path segment, or the method name).
    pub name: String,
    /// Path qualifiers before the name (`codec::decode_meta(` → `["codec"]`);
    /// empty for bare calls and method calls.
    pub qual: Vec<String>,
    /// Whether this is a `.name(...)` method call.
    pub method: bool,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// An `expr as TYPE` cast site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CastSite {
    /// The target type's head identifier (`usize`, `u8`, …).
    pub target: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A `.wait(` / `.wait_timeout(` call with its loop context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitSite {
    /// `wait` or `wait_timeout`.
    pub what: String,
    /// Number of `while`/`loop`/`for` blocks enclosing the call *within the
    /// current function*. Zero means no predicate loop guards the wait.
    pub loop_depth: u32,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One `fn` item recovered from the token stream.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Simple name.
    pub name: String,
    /// Full segment path: `[crate_ident, file modules…, inline mods…,
    /// impl owner?, name]`.
    pub segments: Vec<String>,
    /// Workspace-relative path of the defining file.
    pub rel_path: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the item is test-gated (or the file is test-like).
    pub is_test: bool,
    /// Calls made from the body (test-gated sites excluded).
    pub calls: Vec<CallSite>,
    /// Panic-macro invocations (`panic!`, `assert!`, …) in the body.
    pub panic_macros: Vec<Site>,
    /// `.unwrap()` / `.expect(` sites in the body.
    pub unwraps: Vec<Site>,
    /// Postfix `expr[…]` index sites in the body.
    pub indexes: Vec<Site>,
    /// `as TYPE` cast sites in the body.
    pub casts: Vec<CastSite>,
    /// Condvar-style `.wait(` sites with loop context.
    pub waits: Vec<WaitSite>,
    /// Blocking calls made while a lock guard bound in the same block is
    /// live and not mentioned by the call — the FA010 hold-across-block
    /// pattern. `what` names the blocking call and the guard.
    pub guard_blocking: Vec<Site>,
}

impl FnInfo {
    /// `crate::mod::Owner::name` rendering of [`FnInfo::segments`].
    pub fn qualified(&self) -> String {
        self.segments.join("::")
    }
}

/// Parse result for one file: the `fn` items and file-level constants.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` item found, in source order.
    pub fns: Vec<FnInfo>,
    /// `const NAME … = <int expr>;` items whose initializer evaluates to an
    /// integer (used by the FA011 spec-drift check). `(name, value, line)`.
    pub consts: Vec<(String, u64, u32)>,
}

/// Macros whose invocation is a panic source for FA007. `debug_assert*` is
/// deliberately absent: it vanishes in release builds.
pub const PANIC_MACROS: [&str; 7] =
    ["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

/// Method names never resolved against workspace impls: they are
/// overwhelmingly std methods, and resolving e.g. `.get(` or `.lock(` by
/// bare name would wire false edges into every map and mutex in the tree.
/// This is the documented under-approximation of the call graph.
pub const STD_METHODS: [&str; 104] = [
    "abs", "all", "and_then", "any", "as_bytes", "as_mut", "as_ref", "as_slice", "as_str",
    "bytes", "chain", "chars", "checked_add", "checked_mul", "checked_sub", "chunks", "clone",
    "cloned", "collect", "compare_exchange", "contains", "contains_key", "copied", "count",
    "dedup", "drain", "end", "ends_with", "entry", "enumerate", "eq", "extend", "fetch_add",
    "filter", "filter_map", "find", "first", "flat_map", "flatten", "fold", "from_bits", "get",
    "get_mut", "insert", "into", "into_iter", "is_empty", "is_finite", "is_nan", "iter",
    "iter_mut", "join", "keys", "last", "len", "lines", "load", "lock", "map", "map_err", "max",
    "min", "next", "notify_all", "notify_one", "ok", "ok_or", "ok_or_else", "or_default",
    "or_insert", "parse", "pop", "position", "push", "read", "recv", "retain", "rev", "send",
    "saturating_mul", "skip", "sort", "sort_by", "sort_unstable", "split", "starts_with",
    "start", "store", "strip_prefix", "sum", "take", "to_bits", "to_le_bytes", "to_owned",
    "to_string", "to_vec", "trim", "try_into", "unwrap_or", "unwrap_or_default",
    "unwrap_or_else", "windows", "write", "zip",
];

/// Cast targets FA008 treats as narrowing. `u64`/`i64`/`u128`/`f64` are
/// absent: every integer this codebase casts *up* lands there.
pub const NARROW_CAST_TARGETS: [&str; 9] =
    ["u8", "u16", "u32", "i8", "i16", "i32", "isize", "usize", "f32"];

/// Method names treated as blocking for the guard-held-across-blocking-call
/// check, plus the free functions `read_frame`/`write_frame`.
const BLOCKING_METHODS: [&str; 12] = [
    "accept", "flush", "join", "read", "read_exact", "read_to_end", "recv", "send", "sleep",
    "wait", "wait_timeout", "write_all",
];
const BLOCKING_FREE_FNS: [&str; 2] = ["read_frame", "write_frame"];

/// What the next `{` at matching nesting belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Pending {
    Fn(usize),
    Loop,
    Mod(String),
    Impl(Option<String>),
}

#[derive(Debug)]
struct Block {
    kind: BlockKind,
    /// Lock-guard variables bound directly in this block (name only).
    guards: Vec<String>,
}

#[derive(Debug, PartialEq, Eq)]
enum BlockKind {
    Fn(usize),
    Loop,
    Mod,
    Impl,
    Other,
}

/// Parses one analyzed file into items and sites. `crate_ident` is the
/// owning crate's package name with `-` mapped to `_` (`fbb-serve` →
/// `fbb_serve`); it becomes the first segment of every qualified name.
pub fn parse_file(ctx: &FileCtx, crate_ident: &str) -> ParsedFile {
    let mut out = ParsedFile::default();
    let file_mods = file_module_path(&ctx.rel_path);

    let mut blocks: Vec<Block> = Vec::new();
    let mut mod_stack: Vec<String> = Vec::new();
    let mut impl_stack: Vec<Option<String>> = Vec::new();
    let mut fn_stack: Vec<usize> = Vec::new();
    // Pending block kind, armed by a keyword and attached to the next `{`
    // seen at the paren/bracket nesting recorded when it was armed.
    let mut pending: Option<(Pending, i32)> = None;
    let mut paren_depth: i32 = 0;
    let mut in_use = false;

    let n = ctx.meaningful.len();
    let mut k = 0usize;
    while k < n {
        let Some(t) = ctx.mt(k) else { break };
        let text = t.text.as_str();
        let is_ident = t.kind == TokenKind::Ident;

        if in_use {
            if text == ";" {
                in_use = false;
            }
            k += 1;
            continue;
        }

        match (is_ident, text) {
            (true, "use") if stmt_position(ctx, k) => {
                in_use = true;
                k += 1;
                continue;
            }
            (true, "fn") => {
                // `fn(` is a pointer type, not an item.
                if let Some(name_tok) = ctx.mt(k + 1) {
                    if name_tok.kind == TokenKind::Ident {
                        let mut segments = vec![crate_ident.to_owned()];
                        segments.extend(file_mods.iter().cloned());
                        segments.extend(mod_stack.iter().cloned());
                        if let Some(Some(owner)) = impl_stack.last() {
                            segments.push(owner.clone());
                        }
                        segments.push(name_tok.text.clone());
                        let idx = out.fns.len();
                        out.fns.push(FnInfo {
                            name: name_tok.text.clone(),
                            segments,
                            rel_path: ctx.rel_path.clone(),
                            line: t.line,
                            is_test: ctx.is_test(k),
                            calls: Vec::new(),
                            panic_macros: Vec::new(),
                            unwraps: Vec::new(),
                            indexes: Vec::new(),
                            casts: Vec::new(),
                            waits: Vec::new(),
                            guard_blocking: Vec::new(),
                        });
                        pending = Some((Pending::Fn(idx), paren_depth));
                        k += 2;
                        continue;
                    }
                }
            }
            (true, "while") | (true, "loop") => {
                pending = Some((Pending::Loop, paren_depth));
            }
            // `impl Trait for Type` must not arm a loop.
            (true, "for") if !matches!(pending, Some((Pending::Impl(_), _))) => {
                pending = Some((Pending::Loop, paren_depth));
            }
            (true, "mod") => {
                if let Some(name_tok) = ctx.mt(k + 1) {
                    if name_tok.kind == TokenKind::Ident {
                        pending = Some((Pending::Mod(name_tok.text.clone()), paren_depth));
                        k += 2;
                        continue;
                    }
                }
            }
            (true, "impl") => {
                let owner = impl_owner(ctx, k + 1);
                pending = Some((Pending::Impl(owner), paren_depth));
            }
            (true, "let") if fn_stack.last().is_some() && !ctx.is_test(k) => {
                if let Some(name) = guard_binding(ctx, k) {
                    if let Some(block) = blocks.last_mut() {
                        block.guards.push(name);
                    }
                }
            }
            (true, "const") if !ctx.is_test(k) => {
                if let Some((name, value, line)) = const_item(ctx, k) {
                    out.consts.push((name, value, line));
                }
            }
            (false, "(") | (false, "[") => paren_depth += 1,
            (false, ")") | (false, "]") => paren_depth -= 1,
            (false, "{") => {
                let kind = match pending.take() {
                    Some((p, d)) if d == paren_depth => match p {
                        Pending::Fn(idx) => {
                            fn_stack.push(idx);
                            BlockKind::Fn(idx)
                        }
                        Pending::Loop => BlockKind::Loop,
                        Pending::Mod(name) => {
                            mod_stack.push(name);
                            BlockKind::Mod
                        }
                        Pending::Impl(owner) => {
                            impl_stack.push(owner);
                            BlockKind::Impl
                        }
                    },
                    other => {
                        pending = other; // keep arming across struct-literal braces
                        BlockKind::Other
                    }
                };
                blocks.push(Block { kind, guards: Vec::new() });
            }
            (false, "}") => {
                if let Some(block) = blocks.pop() {
                    match block.kind {
                        BlockKind::Fn(_) => {
                            fn_stack.pop();
                        }
                        BlockKind::Mod => {
                            mod_stack.pop();
                        }
                        BlockKind::Impl => {
                            impl_stack.pop();
                        }
                        BlockKind::Loop | BlockKind::Other => {}
                    }
                }
            }
            (false, ";") => {
                // A braceless `fn` declaration (trait method, extern) never
                // gets a body: disarm a stale pending fn.
                if let Some((Pending::Fn(_), d)) = &pending {
                    if *d == paren_depth {
                        pending = None;
                    }
                }
            }
            _ => {}
        }

        // Expression-level sites only matter inside a function body.
        if let Some(&fn_idx) = fn_stack.last() {
            if !ctx.is_test(k) {
                scan_expression_site(ctx, k, fn_idx, &mut out, &blocks);
            }
        }
        k += 1;
    }
    out
}

/// True when `use` at meaningful-index `k` is in statement position.
fn stmt_position(ctx: &FileCtx, k: usize) -> bool {
    k == 0
        || ctx
            .mt(k - 1)
            .map(|p| matches!(p.text.as_str(), ";" | "}" | "{" | "]" | "pub" | ")"))
            == Some(true)
}

/// Module path implied by the file's location: `src/foo.rs` → `["foo"]`,
/// `src/foo/mod.rs` → `["foo"]`, `src/lib.rs`/`src/main.rs` → `[]`.
fn file_module_path(rel_path: &str) -> Vec<String> {
    let after_src = rel_path.rsplit_once("src/").map(|(_, p)| p).unwrap_or(rel_path);
    let mut mods: Vec<String> = after_src
        .trim_end_matches(".rs")
        .split('/')
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    if matches!(mods.last().map(String::as_str), Some("lib") | Some("main") | Some("mod")) {
        mods.pop();
    }
    mods
}

/// The owning type of an `impl` header starting after the `impl` keyword:
/// the first path's last identifier after `for` when present, otherwise
/// after the impl generics.
fn impl_owner(ctx: &FileCtx, start: usize) -> Option<String> {
    let mut angle: i32 = 0;
    let mut k = start;
    let mut first: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while let Some(t) = ctx.mt(k) {
        match (t.kind, t.text.as_str()) {
            (TokenKind::Op, "{") | (TokenKind::Op, ";") => break,
            (TokenKind::Op, "<") => angle += 1,
            (TokenKind::Op, ">") => angle -= 1,
            (TokenKind::Op, ">>") => angle -= 2,
            (TokenKind::Ident, "for") if angle == 0 => saw_for = true,
            (TokenKind::Ident, "where") if angle == 0 => break,
            (TokenKind::Ident, name) if angle == 0 => {
                // Track the *last* segment of each path: `codec::Decoder`.
                let slot = if saw_for { &mut after_for } else { &mut first };
                let continues_path = ctx.mt(k + 1).map(|x| x.text == "::") == Some(true);
                if slot.is_none() || !continues_path {
                    *slot = Some(name.to_owned());
                }
                if continues_path {
                    *slot = None; // keep looking for the final segment
                }
            }
            _ => {}
        }
        k += 1;
    }
    after_for.or(first)
}

/// Detects `let [mut] NAME = … .lock( … ;` — a mutex-guard binding. Returns
/// the bound name.
fn guard_binding(ctx: &FileCtx, let_k: usize) -> Option<String> {
    let mut k = let_k + 1;
    if ctx.mt(k).map(|t| t.text == "mut") == Some(true) {
        k += 1;
    }
    let name_tok = ctx.mt(k)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    if ctx.mt(k + 1).map(|t| t.text == "=") != Some(true) {
        return None;
    }
    // Scan the initializer to the statement end for a `.lock(` call.
    let mut depth = 0i32;
    let mut j = k + 2;
    let mut locks = false;
    while let Some(t) = ctx.mt(j) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth <= 0 => break,
            "lock" if t.kind == TokenKind::Ident => {
                let dotted = j > 0 && ctx.mt(j - 1).map(|p| p.text == ".") == Some(true);
                let called = ctx.mt(j + 1).map(|x| x.text == "(") == Some(true);
                if dotted && called {
                    locks = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    locks.then(|| name_tok.text.clone())
}

/// Parses `const NAME: TYPE = <int expr>;` at the `const` keyword. Only
/// initializers that evaluate as integer literal arithmetic participate.
fn const_item(ctx: &FileCtx, const_k: usize) -> Option<(String, u64, u32)> {
    let name_tok = ctx.mt(const_k + 1)?;
    if name_tok.kind != TokenKind::Ident || name_tok.text == "fn" {
        return None;
    }
    // Find the `=` at nesting depth 0 before the terminating `;`.
    let mut k = const_k + 2;
    let mut depth = 0i32;
    loop {
        let t = ctx.mt(k)?;
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            "=" if depth == 0 => break,
            ";" => return None,
            _ => {}
        }
        k += 1;
    }
    let expr_start = k + 1;
    let mut end = expr_start;
    let mut depth = 0i32;
    while let Some(t) = ctx.mt(end) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth <= 0 => break,
            _ => {}
        }
        end += 1;
    }
    let value = eval_int_expr(ctx, expr_start, end)?;
    Some((name_tok.text.clone(), value, name_tok.line))
}

/// Evaluates `+`/`*` arithmetic over integer literals (with parentheses) in
/// the meaningful-token range `[start, end)`. Returns `None` on anything
/// else — unevaluable constants are simply not checked.
fn eval_int_expr(ctx: &FileCtx, start: usize, end: usize) -> Option<u64> {
    let mut terms: Vec<u64> = Vec::new(); // sum of products
    let mut product: Option<u64> = None;
    let mut k = start;
    while k < end {
        let t = ctx.mt(k)?;
        match (t.kind, t.text.as_str()) {
            (TokenKind::Int, _) => {
                let v = parse_int_literal(&t.text)?;
                product = Some(match product {
                    None => v,
                    Some(p) => p.checked_mul(v)?,
                });
                // A multiplication must follow `*`; two adjacent ints are
                // not an expression we understand.
                match ctx.mt(k + 1).map(|x| x.text.clone()) {
                    Some(op) if k + 1 < end && op == "*" => k += 1,
                    Some(op) if k + 1 < end && op == "+" => {
                        terms.push(product.take()?);
                        k += 1;
                    }
                    _ if k + 1 >= end => {}
                    _ => return None,
                }
            }
            (TokenKind::Op, "(") => {
                // Find the matching `)` and recurse.
                let mut depth = 0i32;
                let mut close = k;
                while close < end {
                    match ctx.mt(close)?.text.as_str() {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    close += 1;
                }
                let v = eval_int_expr(ctx, k + 1, close)?;
                product = Some(match product {
                    None => v,
                    Some(p) => p.checked_mul(v)?,
                });
                k = close;
                match ctx.mt(k + 1).map(|x| x.text.clone()) {
                    Some(op) if k + 1 < end && op == "*" => k += 1,
                    Some(op) if k + 1 < end && op == "+" => {
                        terms.push(product.take()?);
                        k += 1;
                    }
                    _ if k + 1 >= end => {}
                    _ => return None,
                }
            }
            _ => return None,
        }
        k += 1;
    }
    if let Some(p) = product {
        terms.push(p);
    }
    if terms.is_empty() {
        return None;
    }
    terms.into_iter().try_fold(0u64, u64::checked_add)
}

/// Parses an integer literal token (`164`, `0x1B3`, `16_384`, `1u8`).
pub fn parse_int_literal(text: &str) -> Option<u64> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = clean.strip_prefix("0x").or_else(|| clean.strip_prefix("0X")) {
        let digits: String = hex.chars().take_while(char::is_ascii_hexdigit).collect();
        // Reject a bare `0x` and anything whose tail is not a type suffix.
        if digits.is_empty() {
            return None;
        }
        return u64::from_str_radix(&digits, 16).ok();
    }
    let digits: String = clean.chars().take_while(char::is_ascii_digit).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

/// Records any call/macro/index/cast/wait site anchored at meaningful-index
/// `k` into the current function.
fn scan_expression_site(
    ctx: &FileCtx,
    k: usize,
    fn_idx: usize,
    out: &mut ParsedFile,
    blocks: &[Block],
) {
    let Some(t) = ctx.mt(k) else { return };
    let Some(f) = out.fns.get_mut(fn_idx) else { return };

    if t.kind == TokenKind::Ident {
        let next_open = ctx.mt(k + 1).map(|x| x.text == "(") == Some(true);
        let next_bang = ctx.mt(k + 1).map(|x| x.text == "!") == Some(true);
        let prev_dot = k > 0 && ctx.mt(k - 1).map(|x| x.text == ".") == Some(true);
        let prev_fn = k > 0 && ctx.mt(k - 1).map(|x| x.text == "fn") == Some(true);

        if next_bang && PANIC_MACROS.contains(&t.text.as_str()) {
            let invoked = ctx
                .mt(k + 2)
                .map(|x| matches!(x.text.as_str(), "(" | "[" | "{"))
                == Some(true);
            if invoked {
                f.panic_macros.push(Site {
                    line: t.line,
                    col: t.col,
                    what: format!("`{}!`", t.text),
                });
            }
            return;
        }

        if next_open && !prev_fn {
            if prev_dot {
                match t.text.as_str() {
                    "unwrap" => {
                        if ctx.mt(k + 2).map(|x| x.text == ")") == Some(true) {
                            f.unwraps.push(Site {
                                line: t.line,
                                col: t.col,
                                what: "`.unwrap()`".into(),
                            });
                        }
                        return;
                    }
                    "expect" => {
                        f.unwraps.push(Site { line: t.line, col: t.col, what: "`.expect(…)`".into() });
                        return;
                    }
                    "wait" | "wait_timeout" => {
                        let loop_depth = current_loop_depth(blocks);
                        f.waits.push(WaitSite {
                            what: t.text.clone(),
                            loop_depth,
                            line: t.line,
                            col: t.col,
                        });
                        record_guard_blocking(ctx, k, f, blocks);
                        return;
                    }
                    _ => {}
                }
                if BLOCKING_METHODS.contains(&t.text.as_str()) {
                    record_guard_blocking(ctx, k, f, blocks);
                }
                f.calls.push(CallSite {
                    name: t.text.clone(),
                    qual: Vec::new(),
                    method: true,
                    line: t.line,
                    col: t.col,
                });
            } else {
                // Bare or path-qualified call: walk back over `Seg ::` pairs.
                let mut qual = Vec::new();
                let mut back = k;
                while back >= 2
                    && ctx.mt(back - 1).map(|x| x.text == "::") == Some(true)
                    && ctx.mt(back - 2).map(|x| x.kind == TokenKind::Ident) == Some(true)
                {
                    qual.insert(0, ctx.mt(back - 2).map(|x| x.text.clone()).unwrap_or_default());
                    back -= 2;
                }
                if BLOCKING_FREE_FNS.contains(&t.text.as_str()) {
                    record_guard_blocking(ctx, k, f, blocks);
                }
                f.calls.push(CallSite {
                    name: t.text.clone(),
                    qual,
                    method: false,
                    line: t.line,
                    col: t.col,
                });
            }
        }

        if t.text == "as" {
            if let Some(target) = ctx.mt(k + 1) {
                // `as *const T` / `as *mut T` are pointer casts; `as _` is
                // inferred. Neither is an integer narrowing.
                if target.kind == TokenKind::Ident && target.text != "_" {
                    f.casts.push(CastSite {
                        target: target.text.clone(),
                        line: t.line,
                        col: t.col,
                    });
                }
            }
        }
        return;
    }

    if t.kind == TokenKind::Op && t.text == "[" {
        // Postfix index: `expr[` where expr just ended. Array literals,
        // attributes, types, and macro brackets all have different
        // predecessors.
        let postfix = k > 0
            && ctx
                .mt(k - 1)
                .map(|p| {
                    (p.kind == TokenKind::Ident
                        && !matches!(
                            p.text.as_str(),
                            // `let [a, b] = …` is a slice pattern, not an index.
                            "return" | "break" | "in" | "as" | "mut" | "ref" | "else" | "match"
                                | "let" | "if" | "while"
                        ))
                        || matches!(p.text.as_str(), ")" | "]" | "?")
                })
                == Some(true);
        if postfix {
            let head = ctx.mt(k - 1).map(|p| p.text.clone()).unwrap_or_default();
            f.indexes.push(Site { line: t.line, col: t.col, what: format!("`{head}[…]`") });
        }
    }
}

/// Loop nesting of the innermost function's body at the current block stack.
fn current_loop_depth(blocks: &[Block]) -> u32 {
    let mut depth = 0u32;
    for b in blocks.iter().rev() {
        match b.kind {
            BlockKind::Loop => depth += 1,
            BlockKind::Fn(_) => break,
            _ => {}
        }
    }
    depth
}

/// If a lock guard bound in a live enclosing block (within the current fn)
/// is not mentioned anywhere in the statement around the blocking call at
/// meaningful-index `k`, record a guard-held-across-blocking-call site.
fn record_guard_blocking(ctx: &FileCtx, k: usize, f: &mut FnInfo, blocks: &[Block]) {
    let mut live: Vec<&String> = Vec::new();
    for b in blocks.iter().rev() {
        live.extend(b.guards.iter());
        if matches!(b.kind, BlockKind::Fn(_)) {
            break;
        }
    }
    if live.is_empty() {
        return;
    }
    // The surrounding statement: from the previous `;`/`{`/`}` to the
    // matching `)` of the call's argument list.
    let mut start = k;
    while start > 0 {
        match ctx.mt(start - 1).map(|t| t.text.clone()).as_deref() {
            Some(";") | Some("{") | Some("}") | None => break,
            _ => start -= 1,
        }
    }
    let mut end = k + 1;
    let mut depth = 0i32;
    while let Some(t) = ctx.mt(end) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth <= 0 {
                    break;
                }
            }
            _ => {}
        }
        end += 1;
    }
    let mentions = |name: &str| {
        (start..=end).any(|j| {
            ctx.mt(j).map(|t| t.kind == TokenKind::Ident && t.text == name) == Some(true)
        })
    };
    for guard in live {
        if !mentions(guard) {
            let t = ctx.mt(k).map(|t| (t.line, t.col, t.text.clone()));
            if let Some((line, col, name)) = t {
                f.guard_blocking.push(Site {
                    line,
                    col,
                    what: format!("`.{name}(…)` while lock guard `{guard}` is held"),
                });
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{FileClass, FileCtx};

    fn parsed(path: &str, src: &str) -> ParsedFile {
        let ctx = FileCtx::analyze(path, FileClass::Library, false, src);
        parse_file(&ctx, "fbb_x")
    }

    #[test]
    fn fn_items_get_crate_module_and_impl_qualifiers() {
        let p = parsed(
            "crates/x/src/codec.rs",
            "pub fn free() {}\nmod inner { fn nested() {} }\nstruct S;\nimpl S { fn m(&self) {} }\n\
             impl Clone for S { fn clone(&self) -> S { S } }",
        );
        let names: Vec<String> = p.fns.iter().map(FnInfo::qualified).collect();
        assert_eq!(
            names,
            vec![
                "fbb_x::codec::free",
                "fbb_x::codec::inner::nested",
                "fbb_x::codec::S::m",
                "fbb_x::codec::S::clone",
            ]
        );
    }

    #[test]
    fn lib_rs_has_no_file_module() {
        let p = parsed("crates/x/src/lib.rs", "fn root() {}");
        assert_eq!(p.fns[0].qualified(), "fbb_x::root");
    }

    #[test]
    fn calls_methods_and_macros_are_recorded() {
        let p = parsed(
            "crates/x/src/lib.rs",
            "fn f(d: &D) { codec::decode(d); d.verify(); helper(); panic!(\"boom\"); }",
        );
        let f = &p.fns[0];
        assert!(f.calls.iter().any(|c| c.name == "decode" && c.qual == ["codec"] && !c.method));
        assert!(f.calls.iter().any(|c| c.name == "verify" && c.method));
        assert!(f.calls.iter().any(|c| c.name == "helper" && c.qual.is_empty()));
        assert_eq!(f.panic_macros.len(), 1);
    }

    #[test]
    fn unwrap_index_and_cast_sites_are_found() {
        let p = parsed(
            "crates/x/src/lib.rs",
            "fn f(v: &[u8], n: u64) -> u8 { let x = v.first().unwrap(); let _ = v[0]; \
             let _ = [0u8; 4]; (n as u8) + *x }",
        );
        let f = &p.fns[0];
        assert_eq!(f.unwraps.len(), 1);
        assert_eq!(f.indexes.len(), 1, "array literal must not count: {:?}", f.indexes);
        assert_eq!(f.casts.len(), 1);
        assert_eq!(f.casts[0].target, "u8");
    }

    #[test]
    fn wait_inside_and_outside_loops() {
        let p = parsed(
            "crates/x/src/lib.rs",
            "fn good(cv: &Condvar, g: G) { while x { g = cv.wait(g); } }\n\
             fn bad(cv: &Condvar, g: G) { let _ = cv.wait(g); }",
        );
        assert_eq!(p.fns[0].waits[0].loop_depth, 1);
        assert_eq!(p.fns[1].waits[0].loop_depth, 0);
    }

    #[test]
    fn guard_across_blocking_call_detected_and_mention_exempts() {
        let p = parsed(
            "crates/x/src/lib.rs",
            "fn bad(m: &Mutex<u32>, s: &mut TcpStream) { let g = m.lock().expect(\"l\"); \
             s.flush(); drop(g); }\n\
             fn good(w: &Mutex<TcpStream>) { let mut s = w.lock().expect(\"l\"); s.flush(); }",
        );
        assert_eq!(p.fns[0].guard_blocking.len(), 1, "{:?}", p.fns[0].guard_blocking);
        assert!(p.fns[1].guard_blocking.is_empty());
    }

    #[test]
    fn const_arithmetic_evaluates() {
        let p = parsed(
            "crates/x/src/lib.rs",
            "pub const A: u32 = 16 * 1024 * 1024;\nconst B: usize = 16 + 6 * 24 + 4;\n\
             const C: u16 = 0x1B3;\nconst D: usize = OTHER + 4;",
        );
        assert_eq!(p.consts.len(), 3);
        assert_eq!(p.consts[0], ("A".into(), 16 * 1024 * 1024, 1));
        assert_eq!(p.consts[1].1, 164);
        assert_eq!(p.consts[2].1, 0x1B3);
    }

    #[test]
    fn test_gated_sites_are_skipped() {
        let p = parsed(
            "crates/x/src/lib.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); v[0]; } }",
        );
        assert!(p.fns.iter().all(|f| f.unwraps.is_empty() && f.indexes.is_empty()));
    }
}
