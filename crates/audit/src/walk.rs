//! Deterministic workspace walker: finds every `.rs` file, classifies it,
//! and resolves which crate (and therefore which `Cargo.toml`) owns it.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::context::FileClass;

/// A source file discovered in the workspace.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Build role (rules scope on this).
    pub class: FileClass,
    /// Whether the owning crate's manifest enables `fault-inject` on its
    /// `fbb-lp` dependency.
    pub declares_fault_inject: bool,
}

/// Directories never descended into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "node_modules", ".claude"];

/// The planted-violation fixtures are data, not workspace code.
const FIXTURE_DIR: &str = "crates/audit/fixtures";

/// Walks the workspace rooted at `root` (its `Cargo.toml` must declare
/// `[workspace]`) and returns every `.rs` file in deterministic order.
///
/// # Errors
///
/// I/O errors from the walk, or `InvalidInput` when `root` is not a
/// workspace root.
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml")).map_err(|e| {
        io::Error::new(e.kind(), format!("{}: not a workspace root: {e}", root.display()))
    })?;
    if !manifest.contains("[workspace]") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{}: Cargo.toml has no [workspace] section", root.display()),
        ));
    }
    let mut files = Vec::new();
    walk_dir(root, root, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            let rel = relative(root, &path);
            if rel == FIXTURE_DIR {
                continue;
            }
            walk_dir(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = relative(root, &path);
            out.push(SourceFile {
                class: classify(&rel),
                declares_fault_inject: crate_declares_fault_inject(root, &rel),
                abs: path,
                rel,
            });
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Classifies a workspace-relative path into its build role.
pub fn classify(rel: &str) -> FileClass {
    let test_like = rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/");
    if test_like {
        FileClass::TestLike
    } else if rel.contains("/bin/") || rel.ends_with("src/main.rs") || rel == "build.rs" {
        FileClass::Binary
    } else {
        FileClass::Library
    }
}

/// Whether the crate owning `rel` enables the `fault-inject` feature on a
/// dependency in its `Cargo.toml` (quoted occurrences only — the feature's
/// *definition* line `fault-inject = []` in fbb-lp does not count).
fn crate_declares_fault_inject(root: &Path, rel: &str) -> bool {
    let manifest = crate_manifest(rel);
    fs::read_to_string(root.join(manifest))
        .map(|text| {
            text.lines()
                .filter(|l| !l.trim_start().starts_with('#'))
                .any(|l| l.contains("\"fault-inject\""))
        })
        .unwrap_or(false)
}

/// Manifest path for the crate owning a workspace-relative source path.
fn crate_manifest(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.len() >= 2 && (parts[0] == "crates" || parts[0] == "shims") {
        format!("{}/{}/Cargo.toml", parts[0], parts[1])
    } else {
        "Cargo.toml".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(classify("crates/lp/src/model.rs"), FileClass::Library);
        assert_eq!(classify("src/lib.rs"), FileClass::Library);
        assert_eq!(classify("src/bin/fbb.rs"), FileClass::Binary);
        assert_eq!(classify("crates/bench/src/bin/table1.rs"), FileClass::Binary);
        assert_eq!(classify("tests/cli_status.rs"), FileClass::TestLike);
        assert_eq!(classify("crates/lp/tests/proptest_solver.rs"), FileClass::TestLike);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::TestLike);
    }

    #[test]
    fn manifest_resolution() {
        assert_eq!(crate_manifest("crates/lp/src/model.rs"), "crates/lp/Cargo.toml");
        assert_eq!(crate_manifest("shims/rand/src/lib.rs"), "shims/rand/Cargo.toml");
        assert_eq!(crate_manifest("src/bin/fbb.rs"), "Cargo.toml");
        assert_eq!(crate_manifest("tests/end_to_end.rs"), "Cargo.toml");
    }
}
