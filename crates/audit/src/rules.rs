//! The rule set: repo invariants clippy cannot express.
//!
//! Every rule carries a stable ID, a one-line title, and a fix hint. A
//! finding can be waived inline with
//! `// fbb-audit: allow(RULE_ID) reason` on the same line or the line
//! directly above; every waiver is surfaced in the report.

use crate::context::{FileClass, FileCtx};
use crate::lexer::TokenKind;
use crate::report::Finding;

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable identifier (`FA000`–`FA006`).
    pub id: &'static str,
    /// One-line description of the invariant.
    pub title: &'static str,
    /// How to fix a hit (or when a waiver is appropriate).
    pub hint: &'static str,
}

/// All rules, in ID order.
pub const RULES: [RuleInfo; 7] = [
    RuleInfo {
        id: "FA000",
        title: "malformed fbb-audit waiver comment",
        hint: "write `// fbb-audit: allow(RULE_ID) reason` with a non-empty reason; \
               this rule itself cannot be waived",
    },
    RuleInfo {
        id: "FA001",
        title: "float literal compared with == / != in a solver path",
        hint: "compare through the fbb-lp approx helpers (is_zero / is_nonzero / near) \
               or on integer bit patterns (to_bits)",
    },
    RuleInfo {
        id: "FA002",
        title: ".unwrap() or empty-reason .expect() in non-test library code",
        hint: "propagate a Result, or use .expect(\"why this cannot fail\") with a real reason",
    },
    RuleInfo {
        id: "FA003",
        title: "wall-clock read in a deterministic solver path",
        hint: "route deadlines through the fbb-lp deadline module; wall-clock belongs only \
               there, in telemetry spans, and in explicitly waived runtime reporting",
    },
    RuleInfo {
        id: "FA004",
        title: "telemetry name violates the per-crate prefix convention",
        hint: "counters/stats/spans must be snake_case and carry their layer's prefix \
               (lp_/bnb_/audit_ in fbb-lp, sta_/par_ in fbb-sta, ilp_/core_ in fbb-core, \
               mc_ in fbb-variation, difftest_ in fbb-testkit, cli_ in the CLI)",
    },
    RuleInfo {
        id: "FA005",
        title: "fault-injection hook referenced outside a fault-inject feature gate",
        hint: "wrap the reference in #[cfg(feature = \"fault-inject\")] or declare the \
               feature explicitly on the crate's fbb-lp dependency in Cargo.toml",
    },
    RuleInfo {
        id: "FA006",
        title: "import of a non-shimmed external crate",
        hint: "the offline build only provides std and the shims/ crates (rand, rand_chacha, \
               serde, proptest, criterion); add a shim or gate the dependency",
    },
];

/// Looks up a rule by ID.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Telemetry-name prefix convention: crate-root path prefix → allowed name
/// prefixes. Crates not listed only need snake_case names.
const TELEMETRY_PREFIXES: [(&str, &[&str]); 8] = [
    ("crates/lp", &["lp_", "bnb_", "audit_"]),
    ("crates/sta", &["sta_", "par_"]),
    ("crates/core", &["ilp_", "core_"]),
    ("crates/variation", &["mc_"]),
    ("crates/testkit", &["difftest_"]),
    ("crates/db", &["db_"]),
    ("crates/serve", &["serve_"]),
    ("src", &["cli_"]),
];

/// Crates importable without a shim: std + the workspace's offline shims.
const ALLOWED_IMPORT_ROOTS: [&str; 13] = [
    "std",
    "core",
    "alloc",
    "proc_macro", // rustc-provided, used by the serde_derive shim
    "crate",
    "self",
    "super",
    "rand",
    "rand_chacha",
    "serde",
    "serde_derive",
    "proptest",
    "criterion",
];

/// Runs every rule over an analyzed file; returns raw findings (waivers not
/// yet applied — the caller matches them against `ctx.waivers`).
pub fn check_file(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    rule_fa000(ctx, &mut out);
    rule_fa001(ctx, &mut out);
    rule_fa002(ctx, &mut out);
    rule_fa003(ctx, &mut out);
    rule_fa004(ctx, &mut out);
    rule_fa005(ctx, &mut out);
    rule_fa006(ctx, &mut out);
    // One finding per (rule, line): repeated hits on a line collapse.
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    out
}

fn push(out: &mut Vec<Finding>, ctx: &FileCtx, id: &'static str, line: u32, col: u32, msg: String) {
    out.push(Finding {
        rule: id,
        path: ctx.rel_path.clone(),
        line,
        col,
        message: msg,
        waived: false,
        waiver_reason: None,
    });
}

fn starts_with_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// FA000 — malformed waivers are violations wherever they appear.
fn rule_fa000(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for m in &ctx.malformed_waivers {
        push(out, ctx, "FA000", m.line, 1, m.problem.clone());
    }
    for w in &ctx.waivers {
        if rule(&w.rule).is_none() {
            push(
                out,
                ctx,
                "FA000",
                w.line,
                1,
                format!("waiver names unknown rule `{}`", w.rule),
            );
        }
    }
}

/// FA001 — no `==`/`!=` against float literals in the LP/STA solver paths.
fn rule_fa001(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !starts_with_any(&ctx.rel_path, &["crates/lp/src", "crates/sta/src"])
        || ctx.rel_path == "crates/lp/src/approx.rs"
    {
        return;
    }
    for k in 0..ctx.meaningful.len() {
        let Some(t) = ctx.mt(k) else { continue };
        if t.kind != TokenKind::Op || (t.text != "==" && t.text != "!=") || ctx.is_test(k) {
            continue;
        }
        let prev_float = k > 0 && ctx.mt(k - 1).map(|p| p.kind) == Some(TokenKind::Float);
        let next_float = ctx.mt(k + 1).map(|n| n.kind) == Some(TokenKind::Float);
        if prev_float || next_float {
            push(
                out,
                ctx,
                "FA001",
                t.line,
                t.col,
                format!("float literal compared with `{}`", t.text),
            );
        }
    }
}

/// FA002 — no `.unwrap()` / `.expect("")` in non-test library code.
fn rule_fa002(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.class != FileClass::Library || ctx.rel_path.starts_with("crates/bench") {
        return;
    }
    for k in 1..ctx.meaningful.len() {
        let (Some(prev), Some(t)) = (ctx.mt(k - 1), ctx.mt(k)) else { continue };
        if prev.text != "." || t.kind != TokenKind::Ident || ctx.is_test(k) {
            continue;
        }
        match t.text.as_str() {
            "unwrap" => {
                let open = ctx.mt(k + 1).map(|x| x.text == "(") == Some(true);
                let close = ctx.mt(k + 2).map(|x| x.text == ")") == Some(true);
                if open && close {
                    push(out, ctx, "FA002", t.line, t.col, "`.unwrap()` in library code".into());
                }
            }
            "expect" => {
                let open = ctx.mt(k + 1).map(|x| x.text == "(") == Some(true);
                let empty = ctx.mt(k + 2).map(|x| x.str_content() == Some("")) == Some(true);
                if open && empty {
                    push(
                        out,
                        ctx,
                        "FA002",
                        t.line,
                        t.col,
                        "`.expect(\"\")` carries no reason".into(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// FA003 — determinism: no wall-clock reads in solver layers.
fn rule_fa003(ctx: &FileCtx, out: &mut Vec<Finding>) {
    // `crates/serve/src` is in scope because a daemon is exactly where an
    // ambient clock read would sneak back in: every per-request deadline
    // must run through `lp::deadline::Stopwatch`, never a process-global
    // or hand-rolled `Instant::now()`.
    let scope = [
        "crates/lp/src",
        "crates/sta/src",
        "crates/core/src",
        "crates/variation/src",
        "crates/serve/src",
    ];
    if !starts_with_any(&ctx.rel_path, &scope) || ctx.rel_path == "crates/lp/src/deadline.rs" {
        return;
    }
    for k in 0..ctx.meaningful.len() {
        let Some(t) = ctx.mt(k) else { continue };
        if t.kind != TokenKind::Ident || ctx.is_test(k) {
            continue;
        }
        let hit = match t.text.as_str() {
            "SystemTime" => Some("SystemTime"),
            "Instant" => {
                let path_now = ctx.mt(k + 1).map(|x| x.text == "::") == Some(true)
                    && ctx.mt(k + 2).map(|x| x.text == "now") == Some(true);
                path_now.then_some("Instant::now")
            }
            "elapsed" => {
                let method = k > 0
                    && ctx.mt(k - 1).map(|x| x.text == ".") == Some(true)
                    && ctx.mt(k + 1).map(|x| x.text == "(") == Some(true);
                method.then_some(".elapsed()")
            }
            _ => None,
        };
        if let Some(what) = hit {
            push(
                out,
                ctx,
                "FA003",
                t.line,
                t.col,
                format!("wall-clock read (`{what}`) in a deterministic solver path"),
            );
        }
    }
}

/// FA004 — telemetry counter/stat/span naming conventions.
fn rule_fa004(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let crate_prefixes: Option<&[&str]> = TELEMETRY_PREFIXES
        .iter()
        .find(|(root, _)| {
            ctx.rel_path.starts_with(&format!("{root}/")) || ctx.rel_path == *root
        })
        .map(|(_, p)| *p);
    for k in 2..ctx.meaningful.len() {
        let Some(t) = ctx.mt(k) else { continue };
        if t.kind != TokenKind::Ident
            || !matches!(t.text.as_str(), "counter" | "record" | "span" | "time")
            || ctx.is_test(k)
        {
            continue;
        }
        let qualified = ctx.mt(k - 1).map(|x| x.text == "::") == Some(true)
            && ctx
                .mt(k - 2)
                .map(|x| x.text == "fbb_telemetry" || x.text == "telemetry")
                == Some(true);
        if !qualified || ctx.mt(k + 1).map(|x| x.text == "(") != Some(true) {
            continue;
        }
        let Some(name_tok) = ctx.mt(k + 2) else { continue };
        let Some(name) = name_tok.str_content() else { continue };
        let snake = !name.is_empty()
            && name.chars().next().map(|c| c.is_ascii_lowercase()).unwrap_or(false)
            && name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        if !snake {
            push(
                out,
                ctx,
                "FA004",
                name_tok.line,
                name_tok.col,
                format!("telemetry name `{name}` is not lower_snake_case"),
            );
            continue;
        }
        if let Some(prefixes) = crate_prefixes {
            if !prefixes.iter().any(|p| name.starts_with(p)) {
                push(
                    out,
                    ctx,
                    "FA004",
                    name_tok.line,
                    name_tok.col,
                    format!(
                        "telemetry name `{name}` misses this layer's prefix ({})",
                        prefixes.join(", ")
                    ),
                );
            }
        }
    }
}

/// FA005 — fault hooks stay behind the `fault-inject` feature.
fn rule_fa005(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.rel_path == "crates/lp/src/fault.rs" || ctx.declares_fault_inject {
        // fault.rs *is* the hook module (compiled only under the feature);
        // crates that enable the feature in Cargo.toml may reference hooks
        // unconditionally.
        return;
    }
    let in_lp = ctx.rel_path.starts_with("crates/lp/src");
    for k in 0..ctx.meaningful.len() {
        let Some(t) = ctx.mt(k) else { continue };
        if t.kind != TokenKind::Ident || ctx.is_fault_gated(k) || ctx.is_test(k) {
            continue;
        }
        let hook_ident =
            matches!(t.text.as_str(), "with_flipped_pivot_sign" | "with_iteration_limit");
        let fault_path = t.text == "fault"
            && k >= 2
            && ctx.mt(k - 1).map(|x| x.text == "::") == Some(true)
            && ctx
                .mt(k - 2)
                .map(|x| {
                    let seg = x.text.as_str();
                    seg == "lp" || seg == "fbb_lp" || (in_lp && seg == "crate")
                })
                == Some(true);
        if hook_ident || fault_path {
            push(
                out,
                ctx,
                "FA005",
                t.line,
                t.col,
                format!("`{}` referenced outside a fault-inject gate", t.text),
            );
        }
    }
}

/// FA006 — only shimmed/workspace crates may be imported.
fn rule_fa006(ctx: &FileCtx, out: &mut Vec<Finding>) {
    // Uniform paths: `use` may start with a module declared in this file
    // (`pub use bnb::…` in a crate root), so those names are allowed roots.
    let mut local_mods: Vec<&str> = Vec::new();
    for k in 0..ctx.meaningful.len() {
        if ctx.mt(k).map(|t| t.kind == TokenKind::Ident && t.text == "mod") == Some(true) {
            if let Some(name) = ctx.mt(k + 1) {
                if name.kind == TokenKind::Ident {
                    local_mods.push(name.text.as_str());
                }
            }
        }
    }
    for k in 0..ctx.meaningful.len() {
        let Some(t) = ctx.mt(k) else { continue };
        if t.kind != TokenKind::Ident || t.text != "use" {
            continue;
        }
        // Statement position: start of file or after `;`, `}`, `{`, an
        // attribute `]`, or visibility (`pub`, `pub(crate)`).
        let stmt = k == 0
            || ctx
                .mt(k - 1)
                .map(|p| matches!(p.text.as_str(), ";" | "}" | "{" | "]" | "pub" | ")"))
                == Some(true);
        if !stmt {
            continue;
        }
        let mut s = k + 1;
        if ctx.mt(s).map(|x| x.text == "::") == Some(true) {
            s += 1;
        }
        let Some(seg) = ctx.mt(s) else { continue };
        if seg.kind != TokenKind::Ident {
            continue; // `use {..}` grouping or macro-generated oddity
        }
        let root = seg.text.as_str();
        let allowed = ALLOWED_IMPORT_ROOTS.contains(&root)
            || root.starts_with("fbb")
            || local_mods.contains(&root);
        if !allowed {
            push(
                out,
                ctx,
                "FA006",
                seg.line,
                seg.col,
                format!("import of non-shimmed external crate `{root}`"),
            );
        }
    }
}
