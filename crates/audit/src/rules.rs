//! The rule set: repo invariants clippy cannot express.
//!
//! Every rule carries a stable ID, a one-line title, and a fix hint. A
//! finding can be waived inline with
//! `// fbb-audit: allow(RULE_ID) reason` on the same line or the line
//! directly above; every waiver is surfaced in the report.

use crate::context::{FileClass, FileCtx};
use crate::lexer::TokenKind;
use crate::report::Finding;

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable identifier (`FA000`–`FA011`).
    pub id: &'static str,
    /// One-line description of the invariant.
    pub title: &'static str,
    /// How to fix a hit (or when a waiver is appropriate).
    pub hint: &'static str,
    /// One-paragraph explanation of the invariant and why it exists
    /// (`fbb lint --explain RULE` prints this).
    pub doc: &'static str,
    /// A minimal violating snippet, as planted in the rule's fixture file.
    pub example: &'static str,
    /// Whether the rule needs the deep pass (`fbb lint --deep`): parser,
    /// call graph, manifest, and spec docs.
    pub deep: bool,
}

/// All rules, in ID order.
pub const RULES: [RuleInfo; 12] = [
    RuleInfo {
        id: "FA000",
        title: "malformed fbb-audit waiver comment",
        hint: "write `// fbb-audit: allow(RULE_ID) reason` with a non-empty reason; \
               this rule itself cannot be waived",
        doc: "A waiver comment that does not parse — missing rule id, empty reason, or a \
              rule id the engine does not know — silently waives nothing, which is worse \
              than no waiver at all: the author believes a hit is covered while the gate \
              still fires (or, if the syntax were lenient, never fires again). Malformed \
              waivers are therefore violations in their own right, and FA000 itself can \
              never be waived.",
        example: "// fbb-audit: allow(FA002)\nvalue.unwrap(); // reason text is missing",
        deep: false,
    },
    RuleInfo {
        id: "FA001",
        title: "float literal compared with == / != in a solver path",
        hint: "compare through the fbb-lp approx helpers (is_zero / is_nonzero / near) \
               or on integer bit patterns (to_bits)",
        doc: "Exact equality against a float literal in the LP/STA solver paths is almost \
              always a latent bug: accumulated rounding makes `x == 0.0` false for values \
              that are zero for every numerical purpose, and the difftest harness then \
              diverges across optimization levels. The approx helpers centralize the \
              tolerance policy so it can be tuned in one place.",
        example: "if reduced_cost == 0.0 { // FA001: exact float equality\n    return None;\n}",
        deep: false,
    },
    RuleInfo {
        id: "FA002",
        title: ".unwrap() or empty-reason .expect() in non-test library code",
        hint: "propagate a Result, or use .expect(\"why this cannot fail\") with a real reason",
        doc: "Library code owes its callers an error path, not a process abort. `.unwrap()` \
              and `.expect(\"\")` encode \"this cannot fail\" without saying why, so the \
              next editor cannot check the claim. An `.expect` with a real reason is \
              allowed — it documents the invariant — and test code is exempt because a \
              panic is the correct test-failure mechanism.",
        example: "let design = cache.get(&key).unwrap(); // FA002 in library code",
        deep: false,
    },
    RuleInfo {
        id: "FA003",
        title: "wall-clock read in a deterministic solver path",
        hint: "route deadlines through the fbb-lp deadline module; wall-clock belongs only \
               there, in telemetry spans, and in explicitly waived runtime reporting",
        doc: "The solver layers must be bit-reproducible: the difftest gate compares runs \
              across optimization levels, and any `Instant::now()`/`SystemTime` read that \
              influences control flow makes results depend on machine load. All deadline \
              handling goes through `fbb_lp::deadline`, which is injectable and mocked in \
              tests; telemetry spans and waived runtime reporting are the only other \
              legitimate clock users.",
        example: "let t0 = std::time::Instant::now(); // FA003 in crates/core\nsolve(model);",
        deep: false,
    },
    RuleInfo {
        id: "FA004",
        title: "telemetry name violates the per-crate prefix convention",
        hint: "counters/stats/spans must be snake_case and carry their layer's prefix \
               (lp_/bnb_/audit_ in fbb-lp, sta_/par_ in fbb-sta, ilp_/core_ in fbb-core, \
               mc_ in fbb-variation, difftest_ in fbb-testkit, db_ in fbb-db, serve_ in \
               fbb-serve, audit_ in fbb-audit, cli_ in the CLI)",
        doc: "Telemetry names are a flat global namespace: the snapshot merges every \
              layer's counters into one table, and `fbb status` groups them by prefix. A \
              counter without its layer's prefix lands in the wrong report section and \
              can collide with another crate's name. The convention is enforced at the \
              call site (`fbb_telemetry::counter(\"lp_pivots\", …)`) because names are \
              compile-time string literals.",
        example: "fbb_telemetry::counter(\"Pivots\", 1); // FA004: not snake_case, no lp_ prefix",
        deep: false,
    },
    RuleInfo {
        id: "FA005",
        title: "fault-injection hook referenced outside a fault-inject feature gate",
        hint: "wrap the reference in #[cfg(feature = \"fault-inject\")] or declare the \
               feature explicitly on the crate's fbb-lp dependency in Cargo.toml",
        doc: "The fault-injection hooks flip solver behavior to prove the difftest harness \
              catches defects. Referenced outside the `fault-inject` feature gate they \
              would ship in release builds, where an accidentally armed hook corrupts \
              production results. A crate that declares the feature on its fbb-lp \
              dependency in Cargo.toml opts in deliberately and is exempt.",
        example: "lp::fault::with_flipped_pivot_sign(|| run()); // FA005 outside #[cfg(...)]",
        deep: false,
    },
    RuleInfo {
        id: "FA006",
        title: "import of a non-shimmed external crate",
        hint: "the offline build only provides std and the shims/ crates (rand, rand_chacha, \
               serde, proptest, criterion); add a shim or gate the dependency",
        doc: "The workspace builds fully offline: no crates.io access exists at build time, \
              so any `use` of a crate without a local shim under shims/ breaks the build \
              for everyone else. The allowed roots are std/core/alloc, the workspace's \
              fbb-* crates, and the checked-in shims. New third-party functionality means \
              writing (or extending) a shim, not adding a registry dependency.",
        example: "use regex::Regex; // FA006: no shims/regex crate exists",
        deep: false,
    },
    RuleInfo {
        id: "FA007",
        title: "panic reachable from a network trust-boundary entry",
        hint: "make every function on the call path total: return DbError/ServeError \
               instead of panicking, replace .unwrap()/.expect with error propagation, \
               and use .get(..) instead of bare indexing on decode paths",
        doc: "The functions named in audit.toml's [trust_boundary] section parse bytes \
              that arrive from the network, so any panic they can transitively reach is a \
              remote denial-of-service: one malformed frame kills the worker thread. The \
              deep pass builds a workspace call graph, walks every path from each entry, \
              and reports each reachable panic site (panic!-family macros, .unwrap(), \
              .expect(…), and — on manifest-scoped decode paths — bare slice indexing) \
              with an example call chain. An entry that resolves to no function is itself \
              a violation, so the proof cannot rot silently.",
        example: "pub fn decode(b: &[u8]) -> Header { parse_magic(b) } // entry\n\
                  fn parse_magic(b: &[u8]) -> Header { b.first().copied().unwrap().into() }",
        deep: true,
    },
    RuleInfo {
        id: "FA008",
        title: "unchecked `as` narrowing cast on a codec path",
        hint: "use try_from/try_into (propagating DbError/ServeError on overflow), \
               usize::from for widening, or mask explicitly and document why truncation \
               is intended",
        doc: "On the wire paths (crates/db, crates/serve) an `as` cast to a narrower \
              integer silently truncates attacker-controlled values: `len as usize` on a \
              32-bit target, or `count as u8` after a u64 read, turns an out-of-range \
              value into a small in-range one and defeats the length checks around it. \
              The manifest's [scopes] cast_paths confines the rule to codec crates where \
              every integer crosses a trust boundary; deliberate truncation (bit masks, \
              hashes) is waived at the site with the mask visible.",
        example: "let n = decoder.u64()? as usize; // FA008: silently truncates on 32-bit",
        deep: true,
    },
    RuleInfo {
        id: "FA009",
        title: "bare slice index on a decode path",
        hint: "use .get(..) / .get_mut(..) with an explicit error, or split_at checked \
               against the length you already validated",
        doc: "`bytes[a..b]` panics when the input is shorter than the decoder expects — \
              which on a decode path means a malformed frame aborts the process instead \
              of returning a decode error. The manifest's [scopes] index_paths confines \
              the rule to the byte-level decoders; the same sites also count as FA007 \
              panic sources, so an indexing fix discharges both rules at once. Fixed-table \
              kernels whose indices are masked to the table size are listed in [scopes] \
              exclude with a justification.",
        example: "let magic = &bytes[..8]; // FA009: panics on a short frame",
        deep: true,
    },
    RuleInfo {
        id: "FA010",
        title: "Condvar::wait outside a predicate loop, or a lock guard held across a \
                blocking call",
        hint: "wrap every wait in `while !predicate { guard = cv.wait(guard)? }`, and \
               drop (or scope) Mutex guards before accept/read/write/join/sleep calls",
        doc: "Condition variables permit spurious wakeups: a `wait` not re-checked in a \
              loop resumes on a false signal and proceeds on a violated invariant. And a \
              Mutex guard held across a blocking call (socket accept/read/write, join, \
              sleep, another wait) serializes every other thread behind one slow peer — \
              the classic server stall. The rule is scoped to crates/serve, the only \
              crate with threads, and recognizes `drop(guard)` or guard usage inside the \
              blocking statement as proof the hold is intentional.",
        example: "let g = q.jobs.lock().expect(\"poisoned\");\n\
                  let _ = q.not_empty.wait(g); // FA010: no predicate loop",
        deep: true,
    },
    RuleInfo {
        id: "FA011",
        title: "spec constant drifts from docs/FORMAT.md or docs/PROTOCOL.md",
        hint: "change the source constant and its spec table together (they are one \
               edit), or fix the doc if the code is the intended value",
        doc: "docs/FORMAT.md and docs/PROTOCOL.md are normative: external tools decode \
              .fbb containers and speak the daemon protocol from those tables alone. The \
              deep pass extracts every `NAME` = value and opcode-table row from the docs \
              and cross-checks it against the workspace's `const NAME` declarations — a \
              mismatch means shipped bytes and documented bytes disagree, which is a \
              compatibility break no test catches. A documented constant with no source \
              const is reported at the doc line so renames cannot orphan the spec.",
        example: "pub const MAX_FRAME_LEN: u32 = 4096; // docs/PROTOCOL.md says 16777216",
        deep: true,
    },
];

/// Looks up a rule by ID.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Telemetry-name prefix convention: crate-root path prefix → allowed name
/// prefixes. Crates not listed only need snake_case names.
const TELEMETRY_PREFIXES: [(&str, &[&str]); 9] = [
    ("crates/lp", &["lp_", "bnb_", "audit_"]),
    ("crates/sta", &["sta_", "par_"]),
    ("crates/core", &["ilp_", "core_"]),
    ("crates/variation", &["mc_"]),
    ("crates/testkit", &["difftest_"]),
    ("crates/db", &["db_"]),
    ("crates/serve", &["serve_"]),
    ("crates/audit", &["audit_"]),
    ("src", &["cli_"]),
];

/// Crates importable without a shim: std + the workspace's offline shims.
const ALLOWED_IMPORT_ROOTS: [&str; 13] = [
    "std",
    "core",
    "alloc",
    "proc_macro", // rustc-provided, used by the serde_derive shim
    "crate",
    "self",
    "super",
    "rand",
    "rand_chacha",
    "serde",
    "serde_derive",
    "proptest",
    "criterion",
];

/// Runs every rule over an analyzed file; returns raw findings (waivers not
/// yet applied — the caller matches them against `ctx.waivers`).
pub fn check_file(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    rule_fa000(ctx, &mut out);
    rule_fa001(ctx, &mut out);
    rule_fa002(ctx, &mut out);
    rule_fa003(ctx, &mut out);
    rule_fa004(ctx, &mut out);
    rule_fa005(ctx, &mut out);
    rule_fa006(ctx, &mut out);
    // One finding per (rule, line): repeated hits on a line collapse.
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    out
}

fn push(out: &mut Vec<Finding>, ctx: &FileCtx, id: &'static str, line: u32, col: u32, msg: String) {
    out.push(Finding {
        rule: id,
        path: ctx.rel_path.clone(),
        line,
        col,
        message: msg,
        waived: false,
        waiver_reason: None,
    });
}

fn starts_with_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// FA000 — malformed waivers are violations wherever they appear.
fn rule_fa000(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for m in &ctx.malformed_waivers {
        push(out, ctx, "FA000", m.line, 1, m.problem.clone());
    }
    for w in &ctx.waivers {
        if rule(&w.rule).is_none() {
            push(
                out,
                ctx,
                "FA000",
                w.line,
                1,
                format!("waiver names unknown rule `{}`", w.rule),
            );
        }
    }
}

/// FA001 — no `==`/`!=` against float literals in the LP/STA solver paths.
fn rule_fa001(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !starts_with_any(&ctx.rel_path, &["crates/lp/src", "crates/sta/src"])
        || ctx.rel_path == "crates/lp/src/approx.rs"
    {
        return;
    }
    for k in 0..ctx.meaningful.len() {
        let Some(t) = ctx.mt(k) else { continue };
        if t.kind != TokenKind::Op || (t.text != "==" && t.text != "!=") || ctx.is_test(k) {
            continue;
        }
        let prev_float = k > 0 && ctx.mt(k - 1).map(|p| p.kind) == Some(TokenKind::Float);
        let next_float = ctx.mt(k + 1).map(|n| n.kind) == Some(TokenKind::Float);
        if prev_float || next_float {
            push(
                out,
                ctx,
                "FA001",
                t.line,
                t.col,
                format!("float literal compared with `{}`", t.text),
            );
        }
    }
}

/// FA002 — no `.unwrap()` / `.expect("")` in non-test library code.
fn rule_fa002(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.class != FileClass::Library || ctx.rel_path.starts_with("crates/bench") {
        return;
    }
    for k in 1..ctx.meaningful.len() {
        let (Some(prev), Some(t)) = (ctx.mt(k - 1), ctx.mt(k)) else { continue };
        if prev.text != "." || t.kind != TokenKind::Ident || ctx.is_test(k) {
            continue;
        }
        match t.text.as_str() {
            "unwrap" => {
                let open = ctx.mt(k + 1).map(|x| x.text == "(") == Some(true);
                let close = ctx.mt(k + 2).map(|x| x.text == ")") == Some(true);
                if open && close {
                    push(out, ctx, "FA002", t.line, t.col, "`.unwrap()` in library code".into());
                }
            }
            "expect" => {
                let open = ctx.mt(k + 1).map(|x| x.text == "(") == Some(true);
                let empty = ctx.mt(k + 2).map(|x| x.str_content() == Some("")) == Some(true);
                if open && empty {
                    push(
                        out,
                        ctx,
                        "FA002",
                        t.line,
                        t.col,
                        "`.expect(\"\")` carries no reason".into(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// FA003 — determinism: no wall-clock reads in solver layers.
fn rule_fa003(ctx: &FileCtx, out: &mut Vec<Finding>) {
    // `crates/serve/src` is in scope because a daemon is exactly where an
    // ambient clock read would sneak back in: every per-request deadline
    // must run through `lp::deadline::Stopwatch`, never a process-global
    // or hand-rolled `Instant::now()`.
    let scope = [
        "crates/lp/src",
        "crates/sta/src",
        "crates/core/src",
        "crates/variation/src",
        "crates/serve/src",
    ];
    if !starts_with_any(&ctx.rel_path, &scope) || ctx.rel_path == "crates/lp/src/deadline.rs" {
        return;
    }
    for k in 0..ctx.meaningful.len() {
        let Some(t) = ctx.mt(k) else { continue };
        if t.kind != TokenKind::Ident || ctx.is_test(k) {
            continue;
        }
        let hit = match t.text.as_str() {
            "SystemTime" => Some("SystemTime"),
            "Instant" => {
                let path_now = ctx.mt(k + 1).map(|x| x.text == "::") == Some(true)
                    && ctx.mt(k + 2).map(|x| x.text == "now") == Some(true);
                path_now.then_some("Instant::now")
            }
            "elapsed" => {
                let method = k > 0
                    && ctx.mt(k - 1).map(|x| x.text == ".") == Some(true)
                    && ctx.mt(k + 1).map(|x| x.text == "(") == Some(true);
                method.then_some(".elapsed()")
            }
            _ => None,
        };
        if let Some(what) = hit {
            push(
                out,
                ctx,
                "FA003",
                t.line,
                t.col,
                format!("wall-clock read (`{what}`) in a deterministic solver path"),
            );
        }
    }
}

/// FA004 — telemetry counter/stat/span naming conventions.
fn rule_fa004(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let crate_prefixes: Option<&[&str]> = TELEMETRY_PREFIXES
        .iter()
        .find(|(root, _)| {
            ctx.rel_path.starts_with(&format!("{root}/")) || ctx.rel_path == *root
        })
        .map(|(_, p)| *p);
    for k in 2..ctx.meaningful.len() {
        let Some(t) = ctx.mt(k) else { continue };
        if t.kind != TokenKind::Ident
            || !matches!(t.text.as_str(), "counter" | "record" | "span" | "time")
            || ctx.is_test(k)
        {
            continue;
        }
        let qualified = ctx.mt(k - 1).map(|x| x.text == "::") == Some(true)
            && ctx
                .mt(k - 2)
                .map(|x| x.text == "fbb_telemetry" || x.text == "telemetry")
                == Some(true);
        if !qualified || ctx.mt(k + 1).map(|x| x.text == "(") != Some(true) {
            continue;
        }
        let Some(name_tok) = ctx.mt(k + 2) else { continue };
        let Some(name) = name_tok.str_content() else { continue };
        let snake = !name.is_empty()
            && name.chars().next().map(|c| c.is_ascii_lowercase()).unwrap_or(false)
            && name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        if !snake {
            push(
                out,
                ctx,
                "FA004",
                name_tok.line,
                name_tok.col,
                format!("telemetry name `{name}` is not lower_snake_case"),
            );
            continue;
        }
        if let Some(prefixes) = crate_prefixes {
            if !prefixes.iter().any(|p| name.starts_with(p)) {
                push(
                    out,
                    ctx,
                    "FA004",
                    name_tok.line,
                    name_tok.col,
                    format!(
                        "telemetry name `{name}` misses this layer's prefix ({})",
                        prefixes.join(", ")
                    ),
                );
            }
        }
    }
}

/// FA005 — fault hooks stay behind the `fault-inject` feature.
fn rule_fa005(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.rel_path == "crates/lp/src/fault.rs" || ctx.declares_fault_inject {
        // fault.rs *is* the hook module (compiled only under the feature);
        // crates that enable the feature in Cargo.toml may reference hooks
        // unconditionally.
        return;
    }
    let in_lp = ctx.rel_path.starts_with("crates/lp/src");
    for k in 0..ctx.meaningful.len() {
        let Some(t) = ctx.mt(k) else { continue };
        if t.kind != TokenKind::Ident || ctx.is_fault_gated(k) || ctx.is_test(k) {
            continue;
        }
        let hook_ident =
            matches!(t.text.as_str(), "with_flipped_pivot_sign" | "with_iteration_limit");
        let fault_path = t.text == "fault"
            && k >= 2
            && ctx.mt(k - 1).map(|x| x.text == "::") == Some(true)
            && ctx
                .mt(k - 2)
                .map(|x| {
                    let seg = x.text.as_str();
                    seg == "lp" || seg == "fbb_lp" || (in_lp && seg == "crate")
                })
                == Some(true);
        if hook_ident || fault_path {
            push(
                out,
                ctx,
                "FA005",
                t.line,
                t.col,
                format!("`{}` referenced outside a fault-inject gate", t.text),
            );
        }
    }
}

/// FA006 — only shimmed/workspace crates may be imported.
fn rule_fa006(ctx: &FileCtx, out: &mut Vec<Finding>) {
    // Uniform paths: `use` may start with a module declared in this file
    // (`pub use bnb::…` in a crate root), so those names are allowed roots.
    let mut local_mods: Vec<&str> = Vec::new();
    for k in 0..ctx.meaningful.len() {
        if ctx.mt(k).map(|t| t.kind == TokenKind::Ident && t.text == "mod") == Some(true) {
            if let Some(name) = ctx.mt(k + 1) {
                if name.kind == TokenKind::Ident {
                    local_mods.push(name.text.as_str());
                }
            }
        }
    }
    for k in 0..ctx.meaningful.len() {
        let Some(t) = ctx.mt(k) else { continue };
        if t.kind != TokenKind::Ident || t.text != "use" {
            continue;
        }
        // Statement position: start of file or after `;`, `}`, `{`, an
        // attribute `]`, or visibility (`pub`, `pub(crate)`).
        let stmt = k == 0
            || ctx
                .mt(k - 1)
                .map(|p| matches!(p.text.as_str(), ";" | "}" | "{" | "]" | "pub" | ")"))
                == Some(true);
        if !stmt {
            continue;
        }
        let mut s = k + 1;
        if ctx.mt(s).map(|x| x.text == "::") == Some(true) {
            s += 1;
        }
        let Some(seg) = ctx.mt(s) else { continue };
        if seg.kind != TokenKind::Ident {
            continue; // `use {..}` grouping or macro-generated oddity
        }
        let root = seg.text.as_str();
        let allowed = ALLOWED_IMPORT_ROOTS.contains(&root)
            || root.starts_with("fbb")
            || local_mods.contains(&root);
        if !allowed {
            push(
                out,
                ctx,
                "FA006",
                seg.line,
                seg.col,
                format!("import of non-shimmed external crate `{root}`"),
            );
        }
    }
}
