//! Findings, waiver records, and report rendering (human table + JSON).
//!
//! The JSON writer is hand-rolled (the crate is dependency-free); output is
//! deterministic: findings sorted by path/line/rule, waivers by path/line.

use std::collections::BTreeMap;

use crate::rules::{rule, RULES};

/// One rule hit. `waived` hits are surfaced but do not fail the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule ID (`FA001`, …).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found.
    pub message: String,
    /// Whether an inline waiver covers this finding.
    pub waived: bool,
    /// The waiver's reason, when waived.
    pub waiver_reason: Option<String>,
}

/// A waiver comment found in the tree, with its use status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverRecord {
    /// Rule ID the waiver targets.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the waiver comment.
    pub line: u32,
    /// Justification text.
    pub reason: String,
    /// Whether any finding actually matched it (a stale waiver is `false`).
    pub used: bool,
}

/// One trust-boundary entry's FA007 verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrustEntry {
    /// The qualified entry name from the manifest (or fixture header).
    pub entry: String,
    /// Whether the panic-reachability fixpoint proved it panic-free.
    pub panic_free: bool,
}

/// Statistics from a deep (`--deep`) run: parser/call-graph scale and the
/// per-entry trust-boundary verdicts. The counts mirror the
/// `audit_parse_fns` / `audit_callgraph_edges` / `audit_panic_reachable`
/// telemetry counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeepStats {
    /// Non-test `fn` items parsed workspace-wide.
    pub parse_fns: u64,
    /// Resolved call-graph edges.
    pub callgraph_edges: u64,
    /// Panic sites reachable from the trust boundary (0 on a clean run).
    pub panic_reachable: u64,
    /// Per-entry verdicts, in manifest order.
    pub entries: Vec<TrustEntry>,
}

/// Aggregated result of a lint run.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// All findings (violations and waived hits), sorted.
    pub findings: Vec<Finding>,
    /// Every waiver in the scanned tree, used or not.
    pub waivers: Vec<WaiverRecord>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Deep-run statistics (`None` on a shallow run).
    pub deep: Option<DeepStats>,
}

impl AuditReport {
    /// Unwaived findings — the ones that fail the run.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Whether the run is clean (no unwaived findings).
    pub fn is_clean(&self) -> bool {
        self.violations().next().is_none()
    }

    /// Rule IDs that produced at least one finding (waived or not). The
    /// fixture gate uses this to prove every rule still bites.
    pub fn rules_fired(&self) -> Vec<&'static str> {
        let mut fired: Vec<&'static str> =
            self.findings.iter().map(|f| f.rule).collect();
        fired.sort_unstable();
        fired.dedup();
        fired
    }

    /// Canonical ordering, applied once after all files are merged.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        self.waivers.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    }

    /// Per-rule violation counts (zero-count rules included).
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> =
            RULES.iter().map(|r| (r.id, 0)).collect();
        for f in self.violations() {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        counts
    }

    /// Human-readable report.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let violations = self.violations().count();
        for f in self.violations() {
            let info = rule(f.rule);
            s.push_str(&format!(
                "{}:{}:{}: [{}] {}\n",
                f.path, f.line, f.col, f.rule, f.message
            ));
            if let Some(info) = info {
                s.push_str(&format!("    fix: {}\n", info.hint));
            }
        }
        for f in self.findings.iter().filter(|f| f.waived) {
            s.push_str(&format!(
                "{}:{}:{}: [{}] waived: {} — {}\n",
                f.path,
                f.line,
                f.col,
                f.rule,
                f.message,
                f.waiver_reason.as_deref().unwrap_or("(no reason)")
            ));
        }
        for w in self.waivers.iter().filter(|w| !w.used) {
            s.push_str(&format!(
                "{}:{}: stale waiver for {} (matched no finding): {}\n",
                w.path, w.line, w.rule, w.reason
            ));
        }
        if let Some(deep) = &self.deep {
            for e in &deep.entries {
                s.push_str(&format!(
                    "trust boundary: `{}` — {}\n",
                    e.entry,
                    if e.panic_free { "panic-free" } else { "NOT PROVEN panic-free" }
                ));
            }
            s.push_str(&format!(
                "deep: {} fn(s), {} call edge(s), {} panic site(s) reachable from the trust \
                 boundary\n",
                deep.parse_fns, deep.callgraph_edges, deep.panic_reachable
            ));
        }
        let waived = self.findings.iter().filter(|f| f.waived).count();
        s.push_str(&format!(
            "fbb-audit: {} file(s) scanned, {violations} violation(s), {waived} waived hit(s), \
             {} waiver(s) ({} stale)\n",
            self.files_scanned,
            self.waivers.len(),
            self.waivers.iter().filter(|w| !w.used).count()
        ));
        s
    }

    /// Machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"violation_count\": {},\n", self.violations().count()));
        s.push_str("  \"rule_counts\": {");
        let counts = self.counts();
        let entries: Vec<String> =
            counts.iter().map(|(id, n)| format!("\"{id}\": {n}")).collect();
        s.push_str(&entries.join(", "));
        s.push_str("},\n");
        if let Some(deep) = &self.deep {
            s.push_str("  \"deep\": {\n");
            s.push_str(&format!("    \"audit_parse_fns\": {},\n", deep.parse_fns));
            s.push_str(&format!("    \"audit_callgraph_edges\": {},\n", deep.callgraph_edges));
            s.push_str(&format!("    \"audit_panic_reachable\": {},\n", deep.panic_reachable));
            s.push_str("    \"trust_boundary\": [");
            let rows: Vec<String> = deep
                .entries
                .iter()
                .map(|e| {
                    format!(
                        "{{\"entry\": \"{}\", \"panic_free\": {}}}",
                        json_escape(&e.entry),
                        e.panic_free
                    )
                })
                .collect();
            s.push_str(&rows.join(", "));
            s.push_str("]\n  },\n");
        }
        s.push_str("  \"violations\": [\n");
        let rows: Vec<String> = self
            .violations()
            .map(|f| {
                format!(
                    "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
                     \"message\": \"{}\"}}",
                    f.rule,
                    json_escape(&f.path),
                    f.line,
                    f.col,
                    json_escape(&f.message)
                )
            })
            .collect();
        s.push_str(&rows.join(",\n"));
        s.push_str("\n  ],\n");
        s.push_str("  \"waivers\": [\n");
        let rows: Vec<String> = self
            .waivers
            .iter()
            .map(|w| {
                format!(
                    "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"used\": {}, \
                     \"reason\": \"{}\"}}",
                    json_escape(&w.rule),
                    json_escape(&w.path),
                    w.line,
                    w.used,
                    json_escape(&w.reason)
                )
            })
            .collect();
        s.push_str(&rows.join(",\n"));
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, waived: bool) -> Finding {
        Finding {
            rule,
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            message: "a \"quoted\" message".into(),
            waived,
            waiver_reason: waived.then(|| "because".to_owned()),
        }
    }

    #[test]
    fn violations_exclude_waived() {
        let report = AuditReport {
            findings: vec![finding("FA001", false), finding("FA002", true)],
            waivers: vec![],
            files_scanned: 1,
            deep: None,
        };
        assert_eq!(report.violations().count(), 1);
        assert!(!report.is_clean());
        assert_eq!(report.rules_fired(), vec!["FA001", "FA002"]);
    }

    #[test]
    fn json_is_escaped_and_counts_match() {
        let report = AuditReport {
            findings: vec![finding("FA001", false)],
            waivers: vec![WaiverRecord {
                rule: "FA002".into(),
                path: "p.rs".into(),
                line: 1,
                reason: "r".into(),
                used: false,
            }],
            files_scanned: 2,
            deep: None,
        };
        let json = report.to_json();
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"violation_count\": 1"));
        assert!(json.contains("\"FA001\": 1"));
        assert!(json.contains("\"used\": false"));
    }

    #[test]
    fn summary_reports_stale_waivers() {
        let report = AuditReport {
            findings: vec![],
            waivers: vec![WaiverRecord {
                rule: "FA003".into(),
                path: "p.rs".into(),
                line: 9,
                reason: "old".into(),
                used: false,
            }],
            files_scanned: 1,
            deep: None,
        };
        assert!(report.is_clean());
        assert!(report.summary().contains("stale waiver for FA003"));
    }

    #[test]
    fn deep_stats_render_in_summary_and_json() {
        let report = AuditReport {
            findings: vec![],
            waivers: vec![],
            files_scanned: 3,
            deep: Some(DeepStats {
                parse_fns: 40,
                callgraph_edges: 17,
                panic_reachable: 0,
                entries: vec![
                    TrustEntry { entry: "fbb_serve::protocol::read_frame".into(), panic_free: true },
                    TrustEntry { entry: "nope::missing".into(), panic_free: false },
                ],
            }),
        };
        let summary = report.summary();
        assert!(summary.contains("`fbb_serve::protocol::read_frame` — panic-free"));
        assert!(summary.contains("`nope::missing` — NOT PROVEN"));
        assert!(summary.contains("40 fn(s), 17 call edge(s), 0 panic site(s)"));
        let json = report.to_json();
        assert!(json.contains("\"audit_parse_fns\": 40"));
        assert!(json.contains("\"audit_callgraph_edges\": 17"));
        assert!(json.contains("\"audit_panic_reachable\": 0"));
        assert!(json.contains("{\"entry\": \"fbb_serve::protocol::read_frame\", \"panic_free\": true}"));
    }
}
