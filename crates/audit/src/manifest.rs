//! The checked-in `audit.toml` manifest: trust-boundary entries for the
//! FA007 panic-reachability proof and the path scopes for the FA008/FA009
//! decode-path rules.
//!
//! The parser understands exactly the TOML subset the manifest uses —
//! `[section]` headers and `key = ["…", …]` string arrays (single- or
//! multi-line, `#` comments allowed) — and nothing more; an unparseable
//! line is an error, not a guess. The crate stays dependency-free.

use std::fs;
use std::io;
use std::path::Path;

/// Parsed `audit.toml`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Qualified names of the trust-boundary entry functions (FA007 roots):
    /// suffix-matched against `crate::module::Owner::fn` names.
    pub entries: Vec<String>,
    /// Path prefixes where bare slice indexing is both an FA009 violation
    /// and an FA007 panic source.
    pub index_paths: Vec<String>,
    /// Path prefixes where `as` narrowing casts are FA008 violations.
    pub cast_paths: Vec<String>,
    /// Files (workspace-relative) exempt from FA008/FA009 and from
    /// index-as-panic-source, e.g. a masked fixed-table CRC kernel.
    pub exclude: Vec<String>,
}

impl Manifest {
    /// Loads `<root>/audit.toml`.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` when the file does not parse or is
    /// missing a required key.
    pub fn load(root: &Path) -> io::Result<Manifest> {
        let path = root.join("audit.toml");
        let text = fs::read_to_string(&path).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("{}: {e} (the deep rules need the trust-boundary manifest)", path.display()),
            )
        })?;
        Manifest::parse(&text).map_err(|msg| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}: {msg}", path.display()))
        })
    }

    /// Parses manifest text. See the module docs for the accepted subset.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first unparseable line.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut m = Manifest::default();
        let mut section = String::new();
        let mut pending_key: Option<String> = None;
        let mut pending_items: Vec<String> = Vec::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_owned();
            if line.is_empty() {
                continue;
            }
            if let Some(open) = pending_key.take() {
                // Continuation lines of a multi-line array.
                let closed = line.contains(']');
                let body = line.trim_end_matches([']', ',', ' ']);
                parse_string_items(body, &mut pending_items)
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                if closed {
                    assign(&mut m, &section, &open, std::mem::take(&mut pending_items))
                        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                } else {
                    pending_key = Some(open);
                }
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_owned();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = [...]`, got `{line}`", lineno + 1));
            };
            let key = key.trim().to_owned();
            let value = value.trim();
            let Some(open_rest) = value.strip_prefix('[') else {
                return Err(format!("line {}: `{key}` must be a string array", lineno + 1));
            };
            if let Some(body) = open_rest.strip_suffix(']') {
                let mut items = Vec::new();
                parse_string_items(body, &mut items)
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                assign(&mut m, &section, &key, items)
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            } else {
                parse_string_items(open_rest, &mut pending_items)
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                pending_key = Some(key);
            }
        }
        if let Some(key) = pending_key {
            return Err(format!("unterminated array for `{key}`"));
        }
        if m.entries.is_empty() {
            return Err("`[trust_boundary] entries` is empty or missing".into());
        }
        Ok(m)
    }
}

/// Drops a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"a", "b",` fragments into `out`.
fn parse_string_items(body: &str, out: &mut Vec<String>) -> Result<(), String> {
    for piece in body.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        let inner = piece
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("expected a quoted string, got `{piece}`"))?;
        out.push(inner.to_owned());
    }
    Ok(())
}

fn assign(m: &mut Manifest, section: &str, key: &str, items: Vec<String>) -> Result<(), String> {
    match (section, key) {
        ("trust_boundary", "entries") => m.entries = items,
        ("scopes", "index_paths") => m.index_paths = items,
        ("scopes", "cast_paths") => m.cast_paths = items,
        ("scopes", "exclude") => m.exclude = items,
        _ => return Err(format!("unknown manifest key `[{section}] {key}`")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_shape() {
        let m = Manifest::parse(
            "# comment\n[trust_boundary]\nentries = [\n  \"a::b\", # why\n  \"c::d::e\",\n]\n\
             [scopes]\nindex_paths = [\"crates/db/src\"]\ncast_paths = [\"crates/db/src\", \"crates/serve/src\"]\n\
             exclude = [\"crates/db/src/crc.rs\"]\n",
        )
        .expect("parses");
        assert_eq!(m.entries, vec!["a::b", "c::d::e"]);
        assert_eq!(m.index_paths, vec!["crates/db/src"]);
        assert_eq!(m.cast_paths.len(), 2);
        assert_eq!(m.exclude, vec!["crates/db/src/crc.rs"]);
    }

    #[test]
    fn missing_entries_is_an_error() {
        assert!(Manifest::parse("[scopes]\nindex_paths = [\"x\"]\n").is_err());
    }

    #[test]
    fn unknown_keys_and_bare_words_are_errors() {
        assert!(Manifest::parse("[trust_boundary]\nentries = [\"a\"]\nnope = [\"b\"]\n").is_err());
        assert!(Manifest::parse("[trust_boundary]\nentries = [unquoted]\n").is_err());
    }

    #[test]
    fn hash_inside_strings_is_not_a_comment() {
        let m = Manifest::parse("[trust_boundary]\nentries = [\"a#b\"]\n").expect("parses");
        assert_eq!(m.entries, vec!["a#b"]);
    }
}
