//! A small hand-rolled Rust lexer.
//!
//! This is *not* a compliant Rust tokenizer — it is the minimal scanner the
//! rule engine needs: it distinguishes comments, string/char literals,
//! numeric literals (with a float/integer split), identifiers, lifetimes,
//! and a fixed set of compound operators, and it **never fails**: any byte
//! sequence lexes to a token stream (unknown bytes become
//! [`TokenKind::Unknown`], unterminated literals run to end of input).
//! Robustness over fidelity — the analyzer walks arbitrary files and must
//! not panic on any of them (property-tested in `tests/proptest_lexer.rs`).

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `use`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Integer literal (`42`, `0xFF_u32`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `1f64`, `1.`).
    Float,
    /// String-like literal (`"…"`, `r#"…"#`, `b"…"`, `'c'`).
    Str,
    /// `// …` comment (doc comments included; text keeps the slashes).
    LineComment,
    /// `/* … */` comment (nesting handled; text keeps the delimiters).
    BlockComment,
    /// Operator or punctuation (`==`, `::`, `{`, …).
    Op,
    /// Any byte sequence the scanner does not recognize.
    Unknown,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Source text of the token. For [`TokenKind::Str`] produced from a
    /// plain `"…"` literal, [`Token::str_content`] recovers the inner text.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// For a plain double-quoted string literal, the content between the
    /// quotes (escapes left as written); `None` for other token kinds and
    /// raw/byte forms.
    pub fn str_content(&self) -> Option<&str> {
        if self.kind != TokenKind::Str {
            return None;
        }
        let t = self.text.as_str();
        let inner = t.strip_prefix('"')?.strip_suffix('"')?;
        Some(inner)
    }
}

/// Compound operators recognized greedily (longest match first).
const OPS: [&str; 25] = [
    "<<=", ">>=", "...", "..=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "//",
];

struct Scanner {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Scanner {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes characters while `f` holds, appending to `out`.
    fn take_while(&mut self, out: &mut String, f: impl Fn(char) -> bool) {
        while let Some(c) = self.peek(0) {
            if !f(c) {
                break;
            }
            out.push(c);
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `source` into tokens. Total: every input produces a token stream,
/// and no input panics.
pub fn lex(source: &str) -> Vec<Token> {
    let mut s = Scanner { chars: source.chars().collect(), pos: 0, line: 1, col: 1 };
    let mut tokens = Vec::new();
    while let Some(c) = s.peek(0) {
        let (line, col) = (s.line, s.col);
        if c.is_whitespace() {
            s.bump();
            continue;
        }
        let token = if c == '/' && s.peek(1) == Some('/') {
            lex_line_comment(&mut s)
        } else if c == '/' && s.peek(1) == Some('*') {
            lex_block_comment(&mut s)
        } else if is_string_prefix(&s) || (c == 'r' && s.peek(1) == Some('#')) {
            // The second arm routes raw identifiers (`r#match`) through the
            // same scanner, which re-classifies them as idents.
            lex_string_like(&mut s)
        } else if c == '\'' {
            lex_quote(&mut s)
        } else if c.is_ascii_digit() {
            lex_number(&mut s)
        } else if is_ident_start(c) {
            let mut text = String::new();
            s.take_while(&mut text, is_ident_continue);
            (TokenKind::Ident, text)
        } else {
            lex_op(&mut s)
        };
        tokens.push(Token { kind: token.0, text: token.1, line, col });
    }
    tokens
}

fn lex_line_comment(s: &mut Scanner) -> (TokenKind, String) {
    let mut text = String::new();
    s.take_while(&mut text, |c| c != '\n');
    (TokenKind::LineComment, text)
}

fn lex_block_comment(s: &mut Scanner) -> (TokenKind, String) {
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = s.peek(0) {
        if c == '/' && s.peek(1) == Some('*') {
            depth += 1;
            text.push('/');
            text.push('*');
            s.bump();
            s.bump();
        } else if c == '*' && s.peek(1) == Some('/') {
            depth = depth.saturating_sub(1);
            text.push('*');
            text.push('/');
            s.bump();
            s.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            s.bump();
        }
    }
    (TokenKind::BlockComment, text)
}

/// Whether the scanner sits on a string-like prefix: `"`, or one of
/// `r b br c cr` (with optional `#`s for raw forms) directly before a quote.
fn is_string_prefix(s: &Scanner) -> bool {
    match s.peek(0) {
        Some('"') => true,
        Some('r') | Some('b') | Some('c') => {
            // b"…", r"…", c"…", br"…", cr"…", r#"…"#, br##"…"##, …
            let mut i = 1;
            if (s.peek(0) == Some('b') || s.peek(0) == Some('c')) && s.peek(1) == Some('r') {
                i = 2;
            }
            while s.peek(i) == Some('#') {
                i += 1;
            }
            s.peek(i) == Some('"')
        }
        _ => false,
    }
}

fn lex_string_like(s: &mut Scanner) -> (TokenKind, String) {
    let mut text = String::new();
    // Prefix letters (r/b/c combinations).
    while matches!(s.peek(0), Some('r') | Some('b') | Some('c')) {
        text.push(s.peek(0).unwrap_or('r'));
        s.bump();
    }
    let raw = text.contains('r');
    let mut hashes = 0usize;
    while s.peek(0) == Some('#') {
        hashes += 1;
        text.push('#');
        s.bump();
    }
    if s.peek(0) != Some('"') {
        // `r#ident` raw identifier or stray `#`s: re-classify.
        if is_ident_start(s.peek(0).unwrap_or(' ')) {
            s.take_while(&mut text, is_ident_continue);
            return (TokenKind::Ident, text);
        }
        return (TokenKind::Unknown, text);
    }
    text.push('"');
    s.bump();
    if raw {
        // Scan to `"` followed by `hashes` hash marks.
        while let Some(c) = s.peek(0) {
            if c == '"' && (0..hashes).all(|k| s.peek(1 + k) == Some('#')) {
                text.push('"');
                s.bump();
                for _ in 0..hashes {
                    text.push('#');
                    s.bump();
                }
                break;
            }
            text.push(c);
            s.bump();
        }
    } else {
        while let Some(c) = s.peek(0) {
            if c == '\\' {
                text.push(c);
                s.bump();
                if let Some(esc) = s.peek(0) {
                    text.push(esc);
                    s.bump();
                }
            } else if c == '"' {
                text.push(c);
                s.bump();
                break;
            } else {
                text.push(c);
                s.bump();
            }
        }
    }
    (TokenKind::Str, text)
}

/// `'` starts either a lifetime (`'a`) or a char literal (`'a'`, `'\n'`).
fn lex_quote(s: &mut Scanner) -> (TokenKind, String) {
    let mut text = String::from('\'');
    s.bump();
    match s.peek(0) {
        Some('\\') => {
            // Escaped char literal.
            text.push('\\');
            s.bump();
            if let Some(esc) = s.peek(0) {
                text.push(esc);
                s.bump();
            }
            s.take_while(&mut text, |c| c != '\'' && c != '\n');
            if s.peek(0) == Some('\'') {
                text.push('\'');
                s.bump();
            }
            (TokenKind::Str, text)
        }
        Some(c) if is_ident_start(c) => {
            if s.peek(1) == Some('\'') {
                // 'x' char literal.
                text.push(c);
                s.bump();
                text.push('\'');
                s.bump();
                (TokenKind::Str, text)
            } else {
                // Lifetime: consume the identifier.
                s.take_while(&mut text, is_ident_continue);
                (TokenKind::Lifetime, text)
            }
        }
        Some(c) if c != '\'' => {
            // Non-identifier char literal, e.g. '+' or '0'.
            text.push(c);
            s.bump();
            if s.peek(0) == Some('\'') {
                text.push('\'');
                s.bump();
                (TokenKind::Str, text)
            } else {
                (TokenKind::Unknown, text)
            }
        }
        _ => (TokenKind::Unknown, text),
    }
}

fn lex_number(s: &mut Scanner) -> (TokenKind, String) {
    let mut text = String::new();
    let mut float = false;
    if s.peek(0) == Some('0') && matches!(s.peek(1), Some('x') | Some('o') | Some('b')) {
        text.push('0');
        s.bump();
        text.push(s.peek(0).unwrap_or('x'));
        s.bump();
        s.take_while(&mut text, |c| c.is_ascii_hexdigit() || c == '_');
    } else {
        s.take_while(&mut text, |c| c.is_ascii_digit() || c == '_');
        // A dot continues the float only when NOT followed by another dot
        // (range `0..n`) or an identifier (method call `1.max(2)`).
        if s.peek(0) == Some('.') {
            let after = s.peek(1);
            let is_range = after == Some('.');
            let is_method = after.map(is_ident_start).unwrap_or(false);
            if !is_range && !is_method {
                float = true;
                text.push('.');
                s.bump();
                s.take_while(&mut text, |c| c.is_ascii_digit() || c == '_');
            }
        }
        // Exponent: `e`/`E` with optional sign, only when digits follow.
        if matches!(s.peek(0), Some('e') | Some('E')) {
            let (sign, first_digit) = match s.peek(1) {
                Some('+') | Some('-') => (1, s.peek(2)),
                other => (0, other),
            };
            if first_digit.map(|c| c.is_ascii_digit()).unwrap_or(false) {
                float = true;
                for _ in 0..=sign {
                    text.push(s.peek(0).unwrap_or('e'));
                    s.bump();
                }
                s.take_while(&mut text, |c| c.is_ascii_digit() || c == '_');
            }
        }
    }
    // Type suffix (`u32`, `f64`, …).
    let before_suffix = text.len();
    s.take_while(&mut text, is_ident_continue);
    let suffix = &text[before_suffix..];
    if suffix.starts_with('f') {
        float = true;
    }
    (if float { TokenKind::Float } else { TokenKind::Int }, text)
}

fn lex_op(s: &mut Scanner) -> (TokenKind, String) {
    for op in OPS {
        if op.chars().enumerate().all(|(i, oc)| s.peek(i) == Some(oc)) {
            for _ in 0..op.len() {
                s.bump();
            }
            return (TokenKind::Op, op.to_owned());
        }
    }
    let c = s.peek(0).unwrap_or('\u{FFFD}');
    s.bump();
    if c.is_ascii_punctuation() {
        (TokenKind::Op, c.to_string())
    } else {
        (TokenKind::Unknown, c.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_ops_and_numbers() {
        let toks = kinds("let x = a == 1.5e3;");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Op, "=".into()),
                (TokenKind::Ident, "a".into()),
                (TokenKind::Op, "==".into()),
                (TokenKind::Float, "1.5e3".into()),
                (TokenKind::Op, ";".into()),
            ]
        );
    }

    #[test]
    fn range_and_method_dots_stay_integers() {
        assert_eq!(kinds("0..n")[0].0, TokenKind::Int);
        assert_eq!(kinds("1.max(2)")[0].0, TokenKind::Int);
        assert_eq!(kinds("1.")[0].0, TokenKind::Float);
        assert_eq!(kinds("3.14")[0].0, TokenKind::Float);
        assert_eq!(kinds("1f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("0xFF")[0].0, TokenKind::Int);
    }

    #[test]
    fn comments_capture_text() {
        let toks = kinds("x // fbb-audit: allow(FA001) reason\ny");
        assert_eq!(toks[1].0, TokenKind::LineComment);
        assert!(toks[1].1.contains("allow(FA001)"));
        let toks = kinds("/* outer /* nested */ end */ z");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.contains("nested"));
        assert_eq!(toks[1].1, "z");
    }

    #[test]
    fn strings_and_raw_strings() {
        let toks = lex(r####"let s = "a \" b"; let r = r#"raw "quoted""#;"####);
        let strs: Vec<&Token> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].str_content(), Some(r#"a \" b"#));
        assert!(strs[1].text.starts_with("r#\""));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("&'a str; 'x'; '\\n'");
        assert_eq!(toks[1].0, TokenKind::Lifetime);
        assert_eq!(toks[1].1, "'a");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t == "'x'"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t == "'\\n'"));
    }

    #[test]
    fn raw_identifiers_and_stray_bytes() {
        let toks = kinds("r#match b\"bytes\" \u{1F600}");
        assert_eq!(toks[0], (TokenKind::Ident, "r#match".into()));
        assert_eq!(toks[1].0, TokenKind::Str);
        assert_eq!(toks[2].0, TokenKind::Unknown);
    }

    #[test]
    fn positions_are_one_based_lines() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b\"", "0x", "1e", "r#"] {
            let _ = lex(src);
        }
    }
}
