//! `fbb-audit` — repo-invariant static analysis for the clustered-FBB
//! workspace (Layer 1 of the two-layer audit stack; Layer 2, the ILP model
//! presolve auditor, lives in `fbb_lp::Model::audit`).
//!
//! A hand-rolled lexer ([`lexer`]) feeds a rule engine ([`rules`]) that
//! enforces conventions clippy cannot express:
//!
//! * **FA001** — no `==`/`!=` against float literals in the LP/STA solver
//!   paths (outside the approved `fbb_lp` approx helpers);
//! * **FA002** — no `.unwrap()` / empty-reason `.expect("")` in non-test
//!   library code;
//! * **FA003** — determinism: no wall-clock reads (`Instant::now`,
//!   `SystemTime`, `.elapsed()`) in solver layers outside the `fbb-lp`
//!   deadline module;
//! * **FA004** — telemetry names are snake_case and carry their layer's
//!   prefix (`lp_*`, `bnb_*`, `sta_*`, `difftest_*`, …);
//! * **FA005** — `fault-inject` hooks are referenced only behind the
//!   feature gate (or in crates that declare the feature in Cargo.toml);
//! * **FA006** — imports stay within std + the offline `shims/` crates.
//!
//! The deep pass (`fbb lint --deep`) feeds the same token stream through a
//! token-tree item parser ([`parse`]) into a workspace call graph
//! ([`callgraph`]) and adds the trust-boundary rules, scoped by the
//! checked-in `audit.toml` manifest ([`manifest`]):
//!
//! * **FA007** — no panic (`panic!`-family macro, `.unwrap()`,
//!   `.expect(…)`, scoped slice index) reachable from a declared
//!   trust-boundary entry;
//! * **FA008** — no unchecked `as` narrowing casts on codec paths;
//! * **FA009** — no bare slice indexing on decode paths;
//! * **FA010** — `Condvar::wait` only inside predicate loops, no lock
//!   guards held across blocking calls (`crates/serve`);
//! * **FA011** — source constants match the normative tables in
//!   `docs/FORMAT.md` / `docs/PROTOCOL.md`.
//!
//! A hit is silenced with an inline waiver on the same line or the line
//! above — `// fbb-audit: allow(FA003) reported runtime is observability
//! output` — and every waiver (used or stale) is surfaced in the report.
//! Malformed waivers are themselves violations (**FA000**).
//!
//! The `fixtures/` directory holds planted-violation files (each declaring
//! a virtual workspace path in a header comment); `audit_fixtures` lints
//! them to prove the analyzer still bites, which `scripts/check.sh` arms
//! via `fbb lint --fixtures`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod context;
pub mod deep;
pub mod lexer;
pub mod manifest;
pub mod parse;
pub mod report;
pub mod rules;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

pub use context::{FileClass, FileCtx, Waiver};
pub use manifest::Manifest;
pub use report::{AuditReport, DeepStats, Finding, TrustEntry, WaiverRecord};
pub use rules::{rule, RuleInfo, RULES};

/// Maps a workspace-relative path to the crate identifier its items are
/// qualified under (`crates/db/…` → `fbb_db`, `shims/rand/…` → `rand`,
/// everything else → the root `fbb` crate).
fn crate_ident(rel_path: &str) -> String {
    let parts: Vec<&str> = rel_path.split('/').collect();
    if parts.len() >= 2 && parts[0] == "crates" {
        return format!("fbb_{}", parts[1].replace('-', "_"));
    }
    if parts.len() >= 2 && parts[0] == "shims" {
        return parts[1].replace('-', "_");
    }
    "fbb".to_owned()
}

/// Turns a file's inline waivers into unused [`WaiverRecord`]s.
fn waiver_records(ctx: &FileCtx) -> Vec<WaiverRecord> {
    ctx.waivers
        .iter()
        .map(|w| WaiverRecord {
            rule: w.rule.clone(),
            path: ctx.rel_path.clone(),
            line: w.line,
            reason: w.reason.clone(),
            used: false,
        })
        .collect()
}

/// Matches findings against waiver records: a waiver covers a finding of
/// its rule in its file on the same line or the line below, and is marked
/// used. FA000 (waiver hygiene) can never be waived.
fn apply_waivers(findings: &mut [Finding], waivers: &mut [WaiverRecord]) {
    for f in findings {
        if f.rule == "FA000" {
            continue;
        }
        let matched = waivers.iter_mut().find(|w| {
            w.path == f.path && w.rule == f.rule && (w.line == f.line || w.line + 1 == f.line)
        });
        if let Some(w) = matched {
            f.waived = true;
            f.waiver_reason = Some(w.reason.clone());
            w.used = true;
        }
    }
}

/// Lints one source file. `rel_path` drives rule scoping, `class` the
/// test-code exemptions, and `declares_fault_inject` the FA005 Cargo.toml
/// escape hatch. Returns the findings (waivers already applied) and the
/// file's waiver records.
pub fn audit_source(
    rel_path: &str,
    class: FileClass,
    declares_fault_inject: bool,
    source: &str,
) -> (Vec<Finding>, Vec<WaiverRecord>) {
    let ctx = FileCtx::analyze(rel_path, class, declares_fault_inject, source);
    let mut findings = rules::check_file(&ctx);
    let mut waivers = waiver_records(&ctx);
    apply_waivers(&mut findings, &mut waivers);
    (findings, waivers)
}

/// Lints every `.rs` file in the workspace rooted at `root` with the deep
/// pass armed: shallow rules plus the parser / call-graph rules FA007–FA011
/// driven by `<root>/audit.toml` and the spec docs. Emits the
/// `audit_parse_fns` / `audit_callgraph_edges` / `audit_panic_reachable`
/// telemetry counters and attaches [`DeepStats`] to the report.
///
/// # Errors
///
/// I/O errors from the walk or the source files, a missing or unparseable
/// `audit.toml`, or unreadable spec docs.
pub fn audit_workspace_deep(root: &Path) -> io::Result<AuditReport> {
    let manifest = Manifest::load(root)?;
    let docs = deep::doc_constants(root)?;
    let files = walk::workspace_files(root)?;
    let mut report = AuditReport::default();
    let mut waivers: Vec<WaiverRecord> = Vec::new();
    let mut ctxs: Vec<FileCtx> = Vec::with_capacity(files.len());
    for file in &files {
        let bytes = fs::read(&file.abs)?;
        let source = String::from_utf8_lossy(&bytes);
        let ctx = FileCtx::analyze(&file.rel, file.class, file.declares_fault_inject, &source);
        report.findings.extend(rules::check_file(&ctx));
        waivers.extend(waiver_records(&ctx));
        ctxs.push(ctx);
    }
    let parsed: Vec<parse::ParsedFile> =
        ctxs.iter().map(|c| parse::parse_file(c, &crate_ident(&c.rel_path))).collect();
    let (deep_findings, stats) =
        deep::check_deep(&ctxs, &parsed, &manifest, &manifest.entries, &docs, true);
    report.findings.extend(deep_findings);
    apply_waivers(&mut report.findings, &mut waivers);
    fbb_telemetry::counter("audit_parse_fns", stats.parse_fns);
    fbb_telemetry::counter("audit_callgraph_edges", stats.callgraph_edges);
    fbb_telemetry::counter("audit_panic_reachable", stats.panic_reachable);
    report.deep = Some(stats);
    report.waivers = waivers;
    report.files_scanned = files.len();
    report.sort();
    Ok(report)
}

/// Lints every `.rs` file in the workspace rooted at `root`.
///
/// # Errors
///
/// I/O errors from the walk or from reading a source file.
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    let files = walk::workspace_files(root)?;
    let mut report = AuditReport::default();
    for file in &files {
        let bytes = fs::read(&file.abs)?;
        let source = String::from_utf8_lossy(&bytes);
        let (findings, waivers) =
            audit_source(&file.rel, file.class, file.declares_fault_inject, &source);
        report.findings.extend(findings);
        report.waivers.extend(waivers);
    }
    // The shallow pass cannot judge waivers for deep rules — only
    // `audit_workspace_deep` produces the findings they match — so it must
    // not surface them as stale.
    for w in &mut report.waivers {
        if rules::RULES.iter().any(|r| r.id == w.rule && r.deep) {
            w.used = true;
        }
    }
    report.files_scanned = files.len();
    report.sort();
    Ok(report)
}

/// Header every fixture file must start with, declaring the virtual
/// workspace path the content is linted under.
pub const FIXTURE_HEADER: &str = "// fbb-audit-fixture:";

/// Optional second header marking the fixture's crate as declaring the
/// `fault-inject` feature.
pub const FIXTURE_DECLARES: &str = "// fbb-audit-declares: fault-inject";

/// Optional header declaring a fixture's own FA007 trust-boundary entries
/// (comma-separated qualified names). Fixtures never use the workspace
/// manifest's entries — each FA007 fixture plants its own boundary.
pub const FIXTURE_ENTRIES: &str = "// fbb-audit-entries:";

/// Lints the planted-violation fixtures under `crates/audit/fixtures` of
/// the workspace rooted at `root`, with the deep rules armed. Each fixture
/// is linted as if it lived at the virtual path named in its
/// [`FIXTURE_HEADER`] line; FA007 roots come from [`FIXTURE_ENTRIES`]
/// headers, while the FA008/FA009 path scopes and the FA011 spec docs come
/// from the real workspace (the FA011 documented-but-unimplemented check
/// stays off — fixtures implement almost nothing).
///
/// # Errors
///
/// I/O errors, `InvalidData` for a fixture without a valid header, or a
/// missing/unparseable workspace `audit.toml`.
pub fn audit_fixtures(root: &Path) -> io::Result<AuditReport> {
    let manifest = Manifest::load(root)?;
    let docs = deep::doc_constants(root)?;
    let dir = root.join("crates/audit/fixtures");
    let mut paths: Vec<_> = fs::read_dir(&dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().map(|e| e == "rs").unwrap_or(false))
        .collect();
    paths.sort();
    let mut report = AuditReport::default();
    let mut waivers: Vec<WaiverRecord> = Vec::new();
    let mut ctxs: Vec<FileCtx> = Vec::new();
    let mut entries: Vec<String> = Vec::new();
    for path in &paths {
        let bytes = fs::read(path)?;
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let first = source.lines().next().unwrap_or("");
        let Some(virtual_path) = first.strip_prefix(FIXTURE_HEADER).map(str::trim) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: fixture must start with `{FIXTURE_HEADER} <virtual path>`",
                    path.display()
                ),
            ));
        };
        let mut declares = false;
        for line in source.lines().take(4).skip(1) {
            let line = line.trim();
            if line == FIXTURE_DECLARES {
                declares = true;
            } else if let Some(list) = line.strip_prefix(FIXTURE_ENTRIES) {
                entries.extend(
                    list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_owned),
                );
            }
        }
        let ctx =
            FileCtx::analyze(virtual_path, walk::classify(virtual_path), declares, &source);
        report.findings.extend(rules::check_file(&ctx));
        waivers.extend(waiver_records(&ctx));
        ctxs.push(ctx);
    }
    let parsed: Vec<parse::ParsedFile> =
        ctxs.iter().map(|c| parse::parse_file(c, &crate_ident(&c.rel_path))).collect();
    let (deep_findings, stats) =
        deep::check_deep(&ctxs, &parsed, &manifest, &entries, &docs, false);
    report.findings.extend(deep_findings);
    apply_waivers(&mut report.findings, &mut waivers);
    report.deep = Some(stats);
    report.waivers = waivers;
    report.files_scanned = paths.len();
    report.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_applies_same_line_and_line_above() {
        let src = "\
use std::time::Instant;
fn f() {
    // fbb-audit: allow(FA003) runtime reporting only
    let t = Instant::now();
    let u = Instant::now(); // fbb-audit: allow(FA003) second site
    let _ = (t, u);
    let v = Instant::now();
    let _ = v;
}
";
        let (findings, waivers) =
            audit_source("crates/lp/src/x.rs", FileClass::Library, false, src);
        let fa003: Vec<&Finding> = findings.iter().filter(|f| f.rule == "FA003").collect();
        assert_eq!(fa003.len(), 3);
        assert_eq!(fa003.iter().filter(|f| f.waived).count(), 2);
        assert!(waivers.iter().all(|w| w.used));
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_apply() {
        let src = "// fbb-audit: allow(FA001) wrong rule\nlet t = std::time::Instant::now();";
        let (findings, waivers) =
            audit_source("crates/lp/src/x.rs", FileClass::Library, false, src);
        assert!(findings.iter().any(|f| f.rule == "FA003" && !f.waived));
        assert!(waivers.iter().all(|w| !w.used));
    }

    #[test]
    fn fa000_cannot_be_waived() {
        let src = "\
// fbb-audit: allow(FA000) trying to waive the waiver rule
// fbb-audit: allow(BOGUS) unknown rule id
fn f() {}
";
        let (findings, _) = audit_source("src/x.rs", FileClass::Library, false, src);
        assert!(findings.iter().any(|f| f.rule == "FA000" && !f.waived));
    }
}
