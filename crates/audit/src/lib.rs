//! `fbb-audit` — repo-invariant static analysis for the clustered-FBB
//! workspace (Layer 1 of the two-layer audit stack; Layer 2, the ILP model
//! presolve auditor, lives in `fbb_lp::Model::audit`).
//!
//! A hand-rolled lexer ([`lexer`]) feeds a rule engine ([`rules`]) that
//! enforces conventions clippy cannot express:
//!
//! * **FA001** — no `==`/`!=` against float literals in the LP/STA solver
//!   paths (outside the approved `fbb_lp` approx helpers);
//! * **FA002** — no `.unwrap()` / empty-reason `.expect("")` in non-test
//!   library code;
//! * **FA003** — determinism: no wall-clock reads (`Instant::now`,
//!   `SystemTime`, `.elapsed()`) in solver layers outside the `fbb-lp`
//!   deadline module;
//! * **FA004** — telemetry names are snake_case and carry their layer's
//!   prefix (`lp_*`, `bnb_*`, `sta_*`, `difftest_*`, …);
//! * **FA005** — `fault-inject` hooks are referenced only behind the
//!   feature gate (or in crates that declare the feature in Cargo.toml);
//! * **FA006** — imports stay within std + the offline `shims/` crates.
//!
//! A hit is silenced with an inline waiver on the same line or the line
//! above — `// fbb-audit: allow(FA003) reported runtime is observability
//! output` — and every waiver (used or stale) is surfaced in the report.
//! Malformed waivers are themselves violations (**FA000**).
//!
//! The `fixtures/` directory holds planted-violation files (each declaring
//! a virtual workspace path in a header comment); `audit_fixtures` lints
//! them to prove the analyzer still bites, which `scripts/check.sh` arms
//! via `fbb lint --fixtures`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

pub use context::{FileClass, FileCtx, Waiver};
pub use report::{AuditReport, Finding, WaiverRecord};
pub use rules::{rule, RuleInfo, RULES};

/// Lints one source file. `rel_path` drives rule scoping, `class` the
/// test-code exemptions, and `declares_fault_inject` the FA005 Cargo.toml
/// escape hatch. Returns the findings (waivers already applied) and the
/// file's waiver records.
pub fn audit_source(
    rel_path: &str,
    class: FileClass,
    declares_fault_inject: bool,
    source: &str,
) -> (Vec<Finding>, Vec<WaiverRecord>) {
    let ctx = FileCtx::analyze(rel_path, class, declares_fault_inject, source);
    let mut findings = rules::check_file(&ctx);
    let mut used = vec![false; ctx.waivers.len()];
    for f in &mut findings {
        if f.rule == "FA000" {
            continue; // waiver-hygiene violations cannot be waived
        }
        let matched = ctx.waivers.iter().enumerate().find(|(_, w)| {
            w.rule == f.rule && (w.line == f.line || w.line + 1 == f.line)
        });
        if let Some((i, w)) = matched {
            f.waived = true;
            f.waiver_reason = Some(w.reason.clone());
            used[i] = true;
        }
    }
    let waivers = ctx
        .waivers
        .iter()
        .zip(&used)
        .map(|(w, &used)| WaiverRecord {
            rule: w.rule.clone(),
            path: rel_path.to_owned(),
            line: w.line,
            reason: w.reason.clone(),
            used,
        })
        .collect();
    (findings, waivers)
}

/// Lints every `.rs` file in the workspace rooted at `root`.
///
/// # Errors
///
/// I/O errors from the walk or from reading a source file.
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    let files = walk::workspace_files(root)?;
    let mut report = AuditReport::default();
    for file in &files {
        let bytes = fs::read(&file.abs)?;
        let source = String::from_utf8_lossy(&bytes);
        let (findings, waivers) =
            audit_source(&file.rel, file.class, file.declares_fault_inject, &source);
        report.findings.extend(findings);
        report.waivers.extend(waivers);
    }
    report.files_scanned = files.len();
    report.sort();
    Ok(report)
}

/// Header every fixture file must start with, declaring the virtual
/// workspace path the content is linted under.
pub const FIXTURE_HEADER: &str = "// fbb-audit-fixture:";

/// Optional second header marking the fixture's crate as declaring the
/// `fault-inject` feature.
pub const FIXTURE_DECLARES: &str = "// fbb-audit-declares: fault-inject";

/// Lints the planted-violation fixtures under `crates/audit/fixtures` of
/// the workspace rooted at `root`. Each fixture is linted as if it lived at
/// the virtual path named in its [`FIXTURE_HEADER`] line.
///
/// # Errors
///
/// I/O errors, or `InvalidData` for a fixture without a valid header.
pub fn audit_fixtures(root: &Path) -> io::Result<AuditReport> {
    let dir = root.join("crates/audit/fixtures");
    let mut paths: Vec<_> = fs::read_dir(&dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().map(|e| e == "rs").unwrap_or(false))
        .collect();
    paths.sort();
    let mut report = AuditReport::default();
    for path in &paths {
        let bytes = fs::read(path)?;
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let first = source.lines().next().unwrap_or("");
        let Some(virtual_path) = first.strip_prefix(FIXTURE_HEADER).map(str::trim) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: fixture must start with `{FIXTURE_HEADER} <virtual path>`",
                    path.display()
                ),
            ));
        };
        let declares = source.lines().nth(1).map(str::trim) == Some(FIXTURE_DECLARES);
        let (findings, waivers) =
            audit_source(virtual_path, walk::classify(virtual_path), declares, &source);
        report.findings.extend(findings);
        report.waivers.extend(waivers);
    }
    report.files_scanned = paths.len();
    report.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_applies_same_line_and_line_above() {
        let src = "\
use std::time::Instant;
fn f() {
    // fbb-audit: allow(FA003) runtime reporting only
    let t = Instant::now();
    let u = Instant::now(); // fbb-audit: allow(FA003) second site
    let _ = (t, u);
    let v = Instant::now();
    let _ = v;
}
";
        let (findings, waivers) =
            audit_source("crates/lp/src/x.rs", FileClass::Library, false, src);
        let fa003: Vec<&Finding> = findings.iter().filter(|f| f.rule == "FA003").collect();
        assert_eq!(fa003.len(), 3);
        assert_eq!(fa003.iter().filter(|f| f.waived).count(), 2);
        assert!(waivers.iter().all(|w| w.used));
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_apply() {
        let src = "// fbb-audit: allow(FA001) wrong rule\nlet t = std::time::Instant::now();";
        let (findings, waivers) =
            audit_source("crates/lp/src/x.rs", FileClass::Library, false, src);
        assert!(findings.iter().any(|f| f.rule == "FA003" && !f.waived));
        assert!(waivers.iter().all(|w| !w.used));
    }

    #[test]
    fn fa000_cannot_be_waived() {
        let src = "\
// fbb-audit: allow(FA000) trying to waive the waiver rule
// fbb-audit: allow(BOGUS) unknown rule id
fn f() {}
";
        let (findings, _) = audit_source("src/x.rs", FileClass::Library, false, src);
        assert!(findings.iter().any(|f| f.rule == "FA000" && !f.waived));
    }
}
