//! Per-file analysis context: the token stream plus everything the rules
//! need to scope themselves — which tokens are inside `#[cfg(test)]` items,
//! which are inside `#[cfg(feature = "fault-inject")]` gates, and the
//! parsed `// fbb-audit: allow(RULE) reason` waiver comments.

use crate::lexer::{lex, Token, TokenKind};

/// How a file participates in the build — rules scope on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Compiled into a library (`crates/*/src`, the facade `src/lib.rs`).
    Library,
    /// A binary entry point (`src/bin`, `crates/*/src/bin`).
    Binary,
    /// Test-adjacent code: integration tests, benches, examples.
    TestLike,
}

/// An inline waiver: `// fbb-audit: allow(FA003) reason text`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule ID the waiver targets (e.g. `FA003`).
    pub rule: String,
    /// 1-based line of the waiver comment. The waiver covers findings on
    /// this line (trailing form) and on the next line (preceding form).
    pub line: u32,
    /// Mandatory justification text after the `allow(...)`.
    pub reason: String,
}

/// A malformed waiver-looking comment (bad syntax or empty reason); always
/// a violation, never waivable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedWaiver {
    /// 1-based line of the offending comment.
    pub line: u32,
    /// What is wrong with it.
    pub problem: String,
}

/// Fully analyzed source file, ready for the rules.
#[derive(Debug)]
pub struct FileCtx {
    /// Workspace-relative path with forward slashes (rules scope on this).
    pub rel_path: String,
    /// Build role of the file.
    pub class: FileClass,
    /// Whether the owning crate's `Cargo.toml` enables the `fault-inject`
    /// feature on its `fbb-lp` dependency.
    pub declares_fault_inject: bool,
    /// The full token stream (comments included).
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens, in order.
    pub meaningful: Vec<usize>,
    /// Per-token flag: inside a `#[test]`/`#[cfg(test)]`-gated item.
    pub test_mask: Vec<bool>,
    /// Per-token flag: inside a `#[cfg(feature = "fault-inject")]` gate.
    pub fault_mask: Vec<bool>,
    /// Well-formed waivers found in comments.
    pub waivers: Vec<Waiver>,
    /// Waiver-looking comments that do not parse.
    pub malformed_waivers: Vec<MalformedWaiver>,
}

impl FileCtx {
    /// Lexes and analyzes one file.
    pub fn analyze(
        rel_path: &str,
        class: FileClass,
        declares_fault_inject: bool,
        source: &str,
    ) -> FileCtx {
        let tokens = lex(source);
        let meaningful: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
            })
            .map(|(i, _)| i)
            .collect();
        let (test_mask, fault_mask) = gated_regions(&tokens, &meaningful);
        let (waivers, malformed_waivers) = parse_waivers(&tokens);
        FileCtx {
            rel_path: rel_path.to_owned(),
            class,
            declares_fault_inject,
            tokens,
            meaningful,
            test_mask,
            fault_mask,
            waivers,
            malformed_waivers,
        }
    }

    /// The meaningful token at meaningful-index `k`, if any.
    pub fn mt(&self, k: usize) -> Option<&Token> {
        self.meaningful.get(k).map(|&i| &self.tokens[i])
    }

    /// Whether the meaningful token at meaningful-index `k` is test-gated
    /// (or the whole file is test-like).
    pub fn is_test(&self, k: usize) -> bool {
        self.class == FileClass::TestLike
            || self.meaningful.get(k).map(|&i| self.test_mask[i]).unwrap_or(false)
    }

    /// Whether the meaningful token at meaningful-index `k` sits inside a
    /// `fault-inject` feature gate.
    pub fn is_fault_gated(&self, k: usize) -> bool {
        self.meaningful.get(k).map(|&i| self.fault_mask[i]).unwrap_or(false)
    }
}

/// What a `#[cfg(...)]`-style attribute gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Gates {
    test: bool,
    fault: bool,
}

/// Computes per-token test/fault gating by scanning attributes and marking
/// the item each one covers (up to the matching `}` of the item's first
/// brace block, or a top-level `;` for braceless items).
fn gated_regions(tokens: &[Token], meaningful: &[usize]) -> (Vec<bool>, Vec<bool>) {
    let mut test_mask = vec![false; tokens.len()];
    let mut fault_mask = vec![false; tokens.len()];
    let mut k = 0usize;
    while k < meaningful.len() {
        let tok = &tokens[meaningful[k]];
        if !(tok.kind == TokenKind::Op && tok.text == "#") {
            k += 1;
            continue;
        }
        // `#[...]` outer or `#![...]` inner attribute.
        let mut a = k + 1;
        let inner = matches!(meaningful.get(a).map(|&i| &tokens[i]), Some(t) if t.text == "!");
        if inner {
            a += 1;
        }
        match meaningful.get(a).map(|&i| &tokens[i]) {
            Some(t) if t.kind == TokenKind::Op && t.text == "[" => {}
            _ => {
                k += 1;
                continue;
            }
        }
        let attr_start = k;
        let (gates, attr_end) = scan_attribute(tokens, meaningful, a);
        if !gates.test && !gates.fault {
            k = attr_end + 1;
            continue;
        }
        // The gated region: for an inner attribute, the rest of the file;
        // otherwise the next item (skipping any further attributes).
        let region_end = if inner {
            meaningful.len().saturating_sub(1)
        } else {
            item_end(tokens, meaningful, attr_end + 1)
        };
        for &idx in meaningful.iter().take(region_end + 1).skip(attr_start) {
            test_mask[idx] |= gates.test;
            fault_mask[idx] |= gates.fault;
        }
        k = attr_end + 1;
    }
    (test_mask, fault_mask)
}

/// Scans an attribute starting at the `[` (meaningful-index `open`);
/// returns what it gates and the meaningful-index of the closing `]`.
fn scan_attribute(tokens: &[Token], meaningful: &[usize], open: usize) -> (Gates, usize) {
    let mut depth = 0usize;
    let mut gates = Gates::default();
    let mut negated = false;
    let mut k = open;
    while k < meaningful.len() {
        let t = &tokens[meaningful[k]];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Op, "[") => depth += 1,
            (TokenKind::Op, "]") => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            // `cfg(not(...))` inverts the gate; treat the whole attribute
            // as non-gating (conservative: fewer exemptions).
            (TokenKind::Ident, "not") => negated = true,
            (TokenKind::Ident, "test") => gates.test = true,
            (TokenKind::Str, _) if t.text.contains("fault-inject") => gates.fault = true,
            _ => {}
        }
        k += 1;
    }
    if negated {
        gates = Gates::default();
    }
    (gates, k.min(meaningful.len().saturating_sub(1)))
}

/// Finds the meaningful-index where the item starting at `start` ends:
/// the matching `}` of its first brace block, or a `;` before any brace.
/// Leading attributes on the item are skipped over (they belong to it).
fn item_end(tokens: &[Token], meaningful: &[usize], start: usize) -> usize {
    let mut k = start;
    // Skip stacked attributes.
    while k < meaningful.len() && tokens[meaningful[k]].text == "#" {
        if let Some(next) = meaningful.get(k + 1).map(|&i| &tokens[i]) {
            if next.text == "[" {
                let (_, end) = scan_attribute(tokens, meaningful, k + 1);
                k = end + 1;
                continue;
            }
        }
        break;
    }
    let mut depth = 0usize;
    while k < meaningful.len() {
        let t = &tokens[meaningful[k]];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Op, "{") => depth += 1,
            (TokenKind::Op, "}") => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return k;
                }
            }
            (TokenKind::Op, ";") if depth == 0 => return k,
            _ => {}
        }
        k += 1;
    }
    meaningful.len().saturating_sub(1)
}

/// Extracts waivers from comment tokens. Only plain comments participate:
/// doc comments (`///`, `//!`, `/**`) never carry waivers, so rustdoc
/// examples can mention the syntax freely.
fn parse_waivers(tokens: &[Token]) -> (Vec<Waiver>, Vec<MalformedWaiver>) {
    let mut waivers = Vec::new();
    let mut malformed = Vec::new();
    for t in tokens {
        let body = match t.kind {
            TokenKind::LineComment => {
                let rest = t.text.strip_prefix("//").unwrap_or(&t.text);
                if rest.starts_with('/') || rest.starts_with('!') {
                    continue; // doc comment
                }
                rest
            }
            TokenKind::BlockComment => {
                let rest = t.text.strip_prefix("/*").unwrap_or(&t.text);
                if rest.starts_with('*') || rest.starts_with('!') {
                    continue; // doc comment
                }
                rest.strip_suffix("*/").unwrap_or(rest)
            }
            _ => continue,
        };
        let body = body.trim();
        let Some(directive) = body.strip_prefix("fbb-audit:") else {
            continue;
        };
        let directive = directive.trim();
        let Some(rest) = directive.strip_prefix("allow(") else {
            malformed.push(MalformedWaiver {
                line: t.line,
                problem: format!("expected `allow(RULE) reason`, got `{directive}`"),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            malformed.push(MalformedWaiver {
                line: t.line,
                problem: "unclosed `allow(` in waiver".to_owned(),
            });
            continue;
        };
        let rules = rest[..close].trim().to_owned();
        let reason = rest[close + 1..].trim().to_owned();
        if reason.is_empty() {
            malformed.push(MalformedWaiver {
                line: t.line,
                problem: format!("waiver for {rules} carries no reason"),
            });
            continue;
        }
        // `allow(FA008, FA009)` waives several rules from one comment — a
        // single line can trip more than one deep rule at once.
        let mut any_empty = false;
        for rule in rules.split(',') {
            let rule = rule.trim();
            if rule.is_empty() {
                any_empty = true;
                continue;
            }
            waivers.push(Waiver { rule: rule.to_owned(), line: t.line, reason: reason.clone() });
        }
        if any_empty || rules.trim().is_empty() {
            malformed.push(MalformedWaiver {
                line: t.line,
                problem: format!("empty rule id in `allow({rules})`"),
            });
        }
    }
    (waivers, malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::analyze("crates/lp/src/x.rs", FileClass::Library, false, src)
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let c = ctx("fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}");
        let unwrap_idx =
            (0..c.meaningful.len()).find(|&k| c.mt(k).map(|t| t.text == "unwrap") == Some(true));
        assert!(c.is_test(unwrap_idx.expect("token present")));
        let live = (0..c.meaningful.len())
            .find(|&k| c.mt(k).map(|t| t.text == "live") == Some(true))
            .expect("token present");
        let after = (0..c.meaningful.len())
            .find(|&k| c.mt(k).map(|t| t.text == "after") == Some(true))
            .expect("token present");
        assert!(!c.is_test(live));
        assert!(!c.is_test(after), "mask must end at the matching brace");
    }

    #[test]
    fn test_attribute_gates_one_fn() {
        let c = ctx("#[test]\nfn t() { a(); }\nfn live() { b(); }");
        let a = (0..c.meaningful.len())
            .find(|&k| c.mt(k).map(|t| t.text == "a") == Some(true))
            .expect("token present");
        let b = (0..c.meaningful.len())
            .find(|&k| c.mt(k).map(|t| t.text == "b") == Some(true))
            .expect("token present");
        assert!(c.is_test(a));
        assert!(!c.is_test(b));
    }

    #[test]
    fn cfg_not_test_is_not_gated() {
        let c = ctx("#[cfg(not(test))]\nfn live() { a(); }");
        let a = (0..c.meaningful.len())
            .find(|&k| c.mt(k).map(|t| t.text == "a") == Some(true))
            .expect("token present");
        assert!(!c.is_test(a));
    }

    #[test]
    fn fault_feature_gate_masks_item() {
        let c = ctx("#[cfg(feature = \"fault-inject\")]\npub mod fault;\nfn live() {}");
        let fault = (0..c.meaningful.len())
            .find(|&k| c.mt(k).map(|t| t.text == "fault") == Some(true))
            .expect("token present");
        let live = (0..c.meaningful.len())
            .find(|&k| c.mt(k).map(|t| t.text == "live") == Some(true))
            .expect("token present");
        assert!(c.is_fault_gated(fault));
        assert!(!c.is_fault_gated(live));
    }

    #[test]
    fn waivers_parse_and_doc_comments_are_ignored() {
        let c = ctx(
            "// fbb-audit: allow(FA003) runtime reporting only\nfn f() {}\n\
             /// // fbb-audit: allow(FA001) doc example, not a waiver\nfn g() {}",
        );
        assert_eq!(c.waivers.len(), 1);
        assert_eq!(c.waivers[0].rule, "FA003");
        assert_eq!(c.waivers[0].line, 1);
        assert!(c.malformed_waivers.is_empty());
    }

    #[test]
    fn multi_rule_waivers_split_into_one_waiver_per_rule() {
        let c = ctx("// fbb-audit: allow(FA008, FA009) masked fixed-table lookup\nfn f() {}\n");
        assert_eq!(c.waivers.len(), 2);
        assert_eq!(c.waivers[0].rule, "FA008");
        assert_eq!(c.waivers[1].rule, "FA009");
        assert_eq!(c.waivers[0].reason, c.waivers[1].reason);
        assert!(c.malformed_waivers.is_empty());
    }

    #[test]
    fn reasonless_and_garbled_waivers_are_malformed() {
        let c = ctx("// fbb-audit: allow(FA001)\nfn f() {}\n// fbb-audit: disable(FA001) nope\n");
        assert_eq!(c.waivers.len(), 0);
        assert_eq!(c.malformed_waivers.len(), 2);
    }
}
