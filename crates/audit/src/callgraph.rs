//! Workspace call graph over the parsed `fn` items, with the FA007
//! panic-reachability fixpoint.
//!
//! Resolution is heuristic (and documented as such in DESIGN.md §5l):
//!
//! * **Method calls** resolve by bare name against every workspace impl
//!   method — except names on [`crate::parse::STD_METHODS`], which are
//!   treated as std calls (the under-approximation that keeps `.get(` from
//!   wiring edges into every map in the tree).
//! * **Qualified calls** (`codec::decode_meta(…)`, `Self::helper(…)`)
//!   match when the last qualifier names the callee's impl owner, its
//!   module, or its crate; `Self`/`crate`/`self` resolve against the
//!   caller's own owner/crate first.
//! * **Bare calls** resolve within the caller's file first, then its
//!   crate — imported cross-crate free functions are intentionally not
//!   chased by bare name (over-linking would drown FA007 in false chains).
//!
//! Test-gated functions neither emit edges nor count as panic sources.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parse::{FnInfo, ParsedFile, STD_METHODS};

/// Primitive and ubiquitous std qualifiers: a call qualified by one of
/// these (`u32::try_from`, `String::from_utf8`, …) is a std call, never a
/// workspace edge.
const STD_QUALIFIERS: [&str; 28] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    "f32", "f64", "bool", "char", "str", "String", "Vec", "VecDeque", "Box", "Arc", "Rc",
    "Option", "Result", "Ordering", "Duration", "Instant",
];

/// One function's place in the graph.
#[derive(Debug)]
pub struct FnNode {
    /// The parsed item (sites included).
    pub info: FnInfo,
    /// Indices of functions this one calls (resolved edges only).
    pub callees: Vec<usize>,
}

/// A panic source inside one function.
#[derive(Debug, Clone)]
pub struct PanicSource {
    /// Owning function index.
    pub fn_idx: usize,
    /// 1-based line / column of the site.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human description (`\`.unwrap()\``, `\`panic!\``, `\`buf[…]\``).
    pub what: String,
}

/// The assembled graph plus resolution statistics.
#[derive(Debug)]
pub struct CallGraph {
    /// All non-test functions, indexable by the edge lists.
    pub fns: Vec<FnNode>,
    /// Total resolved edges.
    pub edge_count: u64,
}

impl CallGraph {
    /// Builds the graph from per-file parse results.
    pub fn build(files: &[ParsedFile]) -> CallGraph {
        let mut fns: Vec<FnNode> = Vec::new();
        for file in files {
            for info in &file.fns {
                if info.is_test {
                    continue;
                }
                fns.push(FnNode { info: info.clone(), callees: Vec::new() });
            }
        }
        // name → candidate indices.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, node) in fns.iter().enumerate() {
            by_name.entry(node.info.name.as_str()).or_default().push(i);
        }

        let mut edge_count = 0u64;
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for i in 0..fns.len() {
            let caller = &fns[i];
            let mut callees: BTreeSet<usize> = BTreeSet::new();
            for call in &caller.info.calls {
                resolve(&fns, &by_name, i, call, &mut callees);
            }
            callees.remove(&i);
            edge_count += callees.len() as u64;
            edges[i] = callees.into_iter().collect();
        }
        for (node, e) in fns.iter_mut().zip(edges) {
            node.callees = e;
        }
        CallGraph { fns, edge_count }
    }

    /// Resolves a manifest entry name (suffix of a qualified path, e.g.
    /// `DesignDb::decode_verified`) to function indices.
    pub fn resolve_entry(&self, entry: &str) -> Vec<usize> {
        let want: Vec<&str> = entry.split("::").filter(|s| !s.is_empty()).collect();
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, node)| {
                let segs = &node.info.segments;
                segs.len() >= want.len()
                    && segs[segs.len() - want.len()..].iter().map(String::as_str).eq(want
                        .iter()
                        .copied())
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Breadth-first reachability from `roots`; returns, for each reached
    /// function, the root it was reached from and the call chain
    /// (function indices from root to the function, inclusive).
    pub fn reachable_from(&self, roots: &[usize]) -> BTreeMap<usize, Vec<usize>> {
        let mut chain: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(e) = chain.entry(r) {
                e.insert(vec![r]);
                queue.push_back(r);
            }
        }
        while let Some(i) = queue.pop_front() {
            let prefix = chain.get(&i).cloned().unwrap_or_default();
            for &j in &self.fns[i].callees {
                if let std::collections::btree_map::Entry::Vacant(e) = chain.entry(j) {
                    let mut c = prefix.clone();
                    c.push(j);
                    e.insert(c);
                    queue.push_back(j);
                }
            }
        }
        chain
    }

    /// All panic sources in one function, with slice-index sites included
    /// only when `index_in_scope` says the function's file is a decode path.
    pub fn panic_sources(&self, fn_idx: usize, index_in_scope: bool) -> Vec<PanicSource> {
        let info = &self.fns[fn_idx].info;
        let mut out = Vec::new();
        for s in info.panic_macros.iter().chain(&info.unwraps) {
            out.push(PanicSource { fn_idx, line: s.line, col: s.col, what: s.what.clone() });
        }
        if index_in_scope {
            for s in &info.indexes {
                out.push(PanicSource { fn_idx, line: s.line, col: s.col, what: s.what.clone() });
            }
        }
        out
    }
}

fn resolve(
    fns: &[FnNode],
    by_name: &BTreeMap<&str, Vec<usize>>,
    caller: usize,
    call: &crate::parse::CallSite,
    out: &mut BTreeSet<usize>,
) {
    let Some(candidates) = by_name.get(call.name.as_str()) else { return };
    let caller_info = &fns[caller].info;
    let caller_crate = caller_info.segments.first().map(String::as_str).unwrap_or("");

    if call.method {
        if STD_METHODS.contains(&call.name.as_str()) {
            return;
        }
        // A method call can only land on an impl method (owner present:
        // segments = [crate, mods…, Owner, name] — at least 3 segments).
        out.extend(candidates.iter().filter(|&&i| fns[i].info.segments.len() >= 3));
        return;
    }

    match call.qual.last().map(String::as_str) {
        None => {
            // Bare call: same file, else same crate.
            let same_file: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| fns[i].info.rel_path == caller_info.rel_path)
                .collect();
            if !same_file.is_empty() {
                out.extend(same_file);
                return;
            }
            out.extend(
                candidates
                    .iter()
                    .copied()
                    .filter(|&i| fns[i].info.segments.first().map(String::as_str)
                        == Some(caller_crate)),
            );
        }
        Some("Self") => {
            // Same impl owner as the caller.
            let owner = caller_info.segments.iter().rev().nth(1).cloned();
            out.extend(candidates.iter().copied().filter(|&i| {
                fns[i].info.segments.iter().rev().nth(1) == owner.as_ref()
            }));
        }
        Some("crate") | Some("self") | Some("super") => {
            out.extend(candidates.iter().copied().filter(|&i| {
                fns[i].info.segments.first().map(String::as_str) == Some(caller_crate)
            }));
        }
        Some(q) => {
            if STD_QUALIFIERS.contains(&q) {
                return;
            }
            // Owner, module segment, or crate ident (with `-`→`_` applied
            // by the parser) — anywhere in the callee's qualified path.
            out.extend(candidates.iter().copied().filter(|&i| {
                let segs = &fns[i].info.segments;
                segs.len() >= 2 && segs[..segs.len() - 1].iter().any(|s| s == q)
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{FileClass, FileCtx};
    use crate::parse::parse_file;

    fn graph(files: &[(&str, &str, &str)]) -> CallGraph {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(path, crate_ident, src)| {
                let ctx = FileCtx::analyze(path, FileClass::Library, false, src);
                parse_file(&ctx, crate_ident)
            })
            .collect();
        CallGraph::build(&parsed)
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.fns.iter().position(|n| n.info.name == name).expect("fn present")
    }

    #[test]
    fn qualified_and_bare_calls_link() {
        let g = graph(&[
            (
                "crates/db/src/design.rs",
                "fbb_db",
                "pub fn decode(b: &[u8]) { codec::decode_meta(b); local(b); }\nfn local(_: &[u8]) {}",
            ),
            ("crates/db/src/codec.rs", "fbb_db", "pub fn decode_meta(_: &[u8]) {}"),
        ]);
        let d = idx(&g, "decode");
        assert_eq!(g.fns[d].callees.len(), 2, "{:?}", g.fns[d].callees);
        assert!(g.edge_count >= 2);
    }

    #[test]
    fn std_methods_and_std_qualifiers_do_not_link() {
        let g = graph(&[
            (
                "crates/db/src/a.rs",
                "fbb_db",
                "pub fn f(v: &[u8]) { v.get(0); u32::try_from(1u64); }\n",
            ),
            ("crates/db/src/b.rs", "fbb_db", "impl M { pub fn get(&self) {} fn try_from() {} }"),
        ]);
        let f = idx(&g, "f");
        assert!(g.fns[f].callees.is_empty());
    }

    #[test]
    fn method_calls_link_to_workspace_impls() {
        let g = graph(&[
            ("crates/db/src/a.rs", "fbb_db", "pub fn f(p: &P) { p.validate(); }"),
            (
                "crates/netlist/src/lib.rs",
                "fbb_netlist",
                "impl Netlist { pub fn validate(&self) {} }",
            ),
        ]);
        let f = idx(&g, "f");
        let v = idx(&g, "validate");
        assert_eq!(g.fns[f].callees, vec![v]);
    }

    #[test]
    fn entry_resolution_is_suffix_based_and_reachability_chains() {
        let g = graph(&[(
            "crates/serve/src/protocol.rs",
            "fbb_serve",
            "pub fn read_frame(b: &[u8]) { helper(b); }\nfn helper(b: &[u8]) { deep(b); }\n\
             fn deep(_: &[u8]) { panic!(\"x\"); }\nfn unrelated() { panic!(\"y\"); }",
        )]);
        let roots = g.resolve_entry("fbb_serve::protocol::read_frame");
        assert_eq!(roots.len(), 1);
        let reach = g.reachable_from(&roots);
        assert_eq!(reach.len(), 3, "unrelated must stay unreachable");
        let deep = idx(&g, "deep");
        assert_eq!(reach[&deep].len(), 3);
        assert_eq!(g.panic_sources(deep, false).len(), 1);
    }
}
