// fbb-audit-fixture: crates/serve/src/planted_fa010.rs
//! Planted FA010: `Condvar::wait` outside a predicate loop, and a mutex
//! guard held across a blocking socket read.

fn planted_naked_wait(
    queue: &std::sync::Mutex<Vec<u64>>,
    ready: &std::sync::Condvar,
) -> usize {
    let guard = queue.lock().expect("queue mutex poisoned");
    let guard = ready.wait(guard).expect("queue mutex poisoned");
    guard.len()
}

fn waived_guard_across_read(
    stream: &mut std::net::TcpStream,
    state: &std::sync::Mutex<u64>,
) -> std::io::Result<usize> {
    let mut buf = [0u8; 4];
    let _guard = state.lock().expect("state mutex poisoned");
    // fbb-audit: allow(FA010) fixture demonstrates a waived blocking call under a guard
    stream.read(&mut buf)
}

fn clean_predicate_loop(
    queue: &std::sync::Mutex<Vec<u64>>,
    ready: &std::sync::Condvar,
) -> u64 {
    let mut guard = queue.lock().expect("queue mutex poisoned");
    while guard.is_empty() {
        guard = ready.wait(guard).expect("queue mutex poisoned");
    }
    guard.pop().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn naked_waits_are_fine_in_tests() {
        let pair = (std::sync::Mutex::new(0u64), std::sync::Condvar::new());
        let guard = pair.0.lock().expect("test mutex poisoned");
        drop(guard);
    }
}
