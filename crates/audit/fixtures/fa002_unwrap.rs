// fbb-audit-fixture: crates/core/src/planted_fa002.rs
//! Planted FA002: `.unwrap()` / reasonless `.expect("")` in library code.

fn planted_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn planted_empty_expect(v: Option<u32>) -> u32 {
    v.expect("")
}

fn waived_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() // fbb-audit: allow(FA002) fixture demonstrates a waived hit
}

fn clean(v: Option<u32>) -> Result<u32, &'static str> {
    let first = v.expect("caller guarantees a value here");
    v.ok_or("missing").map(|x| x + first)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(Some(3).unwrap(), 3);
        assert_eq!(Some(4).expect(""), 4);
    }
}
