// fbb-audit-fixture: crates/serve/src/planted_fa011.rs
//! Planted FA011: spec constants drifting from the values documented in
//! docs/PROTOCOL.md.

/// docs/PROTOCOL.md §2.1 says 16777216 — this planted value drifts.
pub const MAX_FRAME_LEN: u32 = 4096;

// fbb-audit: allow(FA011) fixture demonstrates a waived documented-constant drift
pub const PROTOCOL_VERSION: u8 = 7;

/// Matches the documented value, so it stays silent.
pub const BUDGET_EXPIRED: u8 = 3;

#[cfg(test)]
mod tests {
    /// Consts in test code are not spec constants.
    const MAX_FRAME_LEN: u32 = 1;

    #[test]
    fn test_consts_do_not_drift() {
        assert_eq!(MAX_FRAME_LEN, 1);
    }
}
