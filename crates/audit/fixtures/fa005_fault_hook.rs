// fbb-audit-fixture: crates/core/src/planted_fa005.rs
//! Planted FA005: fault-injection hooks referenced outside the feature
//! gate, in a crate that does not declare `fault-inject` in Cargo.toml.

fn planted_hook_ident() {
    with_flipped_pivot_sign(|| {});
}

fn planted_fault_module_path() {
    fbb_lp::fault::reset();
}

fn waived_hook() {
    // fbb-audit: allow(FA005) fixture demonstrates a waived hook reference
    with_iteration_limit(3, || {});
}

#[cfg(feature = "fault-inject")]
fn clean_gated_hook() {
    fbb_lp::fault::with_flipped_pivot_sign(|| {});
}

#[cfg(test)]
mod tests {
    #[test]
    fn hooks_are_fine_in_tests() {
        super::with_iteration_limit(1, || {});
    }
}
