// fbb-audit-fixture: crates/sta/src/planted_fa003.rs
//! Planted FA003: wall-clock reads in a deterministic solver layer.

use std::time::Instant;

fn planted_instant_now() -> Instant {
    Instant::now()
}

fn planted_elapsed(t: Instant) -> u128 {
    t.elapsed().as_nanos()
}

fn planted_system_time() {
    let _ = std::time::SystemTime::UNIX_EPOCH;
}

fn waived_runtime_report(t: Instant) -> u128 {
    // fbb-audit: allow(FA003) fixture demonstrates waived runtime reporting
    t.elapsed().as_millis()
}

fn clean(limit: Option<std::time::Duration>) -> bool {
    fbb_lp::deadline::deadline_after(limit).is_some()
}

#[cfg(test)]
mod tests {
    #[test]
    fn clocks_are_fine_in_tests() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_secs() < 60);
    }
}
