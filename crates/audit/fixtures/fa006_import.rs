// fbb-audit-fixture: crates/variation/src/planted_fa006.rs
//! Planted FA006: imports of external crates the offline build cannot
//! resolve (no shim under shims/, not a workspace fbb-* crate).

use regex::Regex;

// fbb-audit: allow(FA006) fixture demonstrates a waived import
use libc::c_int;

use std::collections::HashMap;
use fbb_lp::Model;
use rand::Rng;

mod local_helper {}
use local_helper as helper;

fn clean(_m: &Model, _h: HashMap<c_int, Regex>) {}
