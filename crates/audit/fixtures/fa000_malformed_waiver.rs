// fbb-audit-fixture: crates/lp/src/planted_fa000.rs
//! Planted FA000 violations: waiver comments that do not parse. FA000 is
//! unwaivable, so every hit below must survive as a violation.

// fbb-audit: allow(FA001)
fn reasonless_waiver() {}

// fbb-audit: disable(FA002) wrong verb, only allow(...) exists
fn garbled_directive() {}

// fbb-audit: allow(FA999) waiver naming a rule that does not exist
fn unknown_rule() {}
