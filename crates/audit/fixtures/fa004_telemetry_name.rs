// fbb-audit-fixture: crates/lp/src/planted_fa004.rs
//! Planted FA004: telemetry names breaking the naming conventions.

fn planted_not_snake_case() {
    fbb_telemetry::counter("BadName", 1);
}

fn planted_missing_layer_prefix() {
    fbb_telemetry::record("solver_iterations", 7.0);
}

fn waived_legacy_name() {
    // fbb-audit: allow(FA004) fixture demonstrates a waived legacy name
    fbb_telemetry::counter("legacy_total", 1);
}

fn clean() {
    fbb_telemetry::counter("lp_iterations", 1);
    fbb_telemetry::record("bnb_gap", 0.5);
    let _span = fbb_telemetry::span("audit_model_pass");
}

#[cfg(test)]
mod tests {
    #[test]
    fn names_are_unchecked_in_tests() {
        fbb_telemetry::counter("WhateverWorks", 1);
    }
}
