// fbb-audit-fixture: crates/db/src/planted_fa008.rs
//! Planted FA008: unchecked `as` narrowing casts on a codec path.

fn planted_truncating_cast(v: u64) -> u32 {
    v as u32
}

fn waived_cast(v: u64) -> u8 {
    v as u8 // fbb-audit: allow(FA008) fixture demonstrates a waived narrowing cast
}

fn clean_widening(v: u32) -> u64 {
    u64::from(v)
}

fn clean_checked(v: u64) -> u32 {
    u32::try_from(v).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    #[test]
    fn casts_are_fine_in_tests() {
        let v: u64 = 300;
        assert_eq!(v as u8, 44);
        assert_eq!(super::clean_checked(v), 300);
    }
}
