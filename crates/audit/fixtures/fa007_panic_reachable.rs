// fbb-audit-fixture: crates/serve/src/planted_fa007.rs
// fbb-audit-entries: fbb_serve::planted_fa007::entry_decode
//! Planted FA007: panics reachable from a declared trust-boundary entry
//! through the call graph (one direct macro, one waived assert).

pub fn entry_decode(bytes: &[u8]) -> u64 {
    parse_header(bytes)
}

fn parse_header(bytes: &[u8]) -> u64 {
    if bytes.is_empty() {
        reject_empty()
    } else {
        waived_length_guard(bytes)
    }
}

fn reject_empty() -> u64 {
    panic!("planted: decode path panics on empty input")
}

fn waived_length_guard(bytes: &[u8]) -> u64 {
    // fbb-audit: allow(FA007) fixture demonstrates a waived reachable panic
    assert!(bytes.len() < 1024, "planted: waived assert on a decode path");
    u64::try_from(bytes.len()).unwrap_or(0)
}

fn clean_total(bytes: &[u8]) -> u64 {
    bytes.first().copied().map(u64::from).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        assert_eq!(super::entry_decode(b"x"), 1);
        assert_eq!(super::clean_total(&[]), 0);
    }
}
