// fbb-audit-fixture: crates/lp/src/planted_fa001.rs
//! Planted FA001: float-literal equality in a solver path.

fn planted_hit(x: f64) -> bool {
    x == 0.0
}

fn planted_hit_ne(x: f64) -> bool {
    // fbb-audit: allow(FA001) fixture demonstrates a waived hit
    x != 1.0
}

fn clean(x: f64) -> bool {
    let one: f64 = 1.0;
    crate::approx::is_zero(x) || x.to_bits() == one.to_bits()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_compare_is_fine_in_tests() {
        assert!(super::planted_hit(0.0) == true);
        let y = 2.0;
        assert!(y == 2.0);
    }
}
