// fbb-audit-fixture: crates/db/src/planted_fa009.rs
//! Planted FA009: bare slice indexing on a decode path.

fn planted_bare_index(bytes: &[u8]) -> u8 {
    bytes[0]
}

fn waived_index(bytes: &[u8]) -> u8 {
    bytes[1] // fbb-audit: allow(FA009) fixture demonstrates a waived bare index
}

fn clean_get(bytes: &[u8]) -> u8 {
    bytes.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn indexing_is_fine_in_tests() {
        let bytes = [7u8, 8];
        assert_eq!(bytes[0], 7);
        assert_eq!(super::clean_get(&bytes), 7);
    }
}
