//! Robustness properties: the analyzer is fed every `.rs` file in the tree
//! (and, via fixtures, deliberately hostile content), so it must never panic
//! and must preserve basic token invariants on arbitrary input.

use fbb_audit::lexer::{lex, TokenKind};
use fbb_audit::{audit_source, FileClass};
use proptest::collection::vec;
use proptest::prelude::*;

/// Bytes weighted toward the characters that steer the lexer's state
/// machine: quotes, slashes, braces, digits, and raw-string guts.
fn rusty_bytes() -> impl Strategy<Value = Vec<u8>> {
    let alphabet = b"\"'/*#rb\\ \n\t{}()[]=!.:;_09azAZ\xff\x00";
    vec(0..alphabet.len(), 0..256)
        .prop_map(move |idx| idx.into_iter().map(|i| alphabet[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics_on_arbitrary_bytes(bytes in vec(any::<u8>(), 0..512)) {
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let _ = lex(&source);
    }

    #[test]
    fn lexer_never_panics_on_rusty_soup(bytes in rusty_bytes()) {
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let tokens = lex(&source);
        for t in &tokens {
            prop_assert!(t.line >= 1, "lines are 1-based");
            prop_assert!(t.col >= 1, "cols are 1-based");
            prop_assert!(!t.text.is_empty(), "no empty tokens");
        }
        // Lines never decrease across the stream.
        for w in tokens.windows(2) {
            prop_assert!(w[0].line <= w[1].line);
        }
    }

    #[test]
    fn full_audit_never_panics_on_rusty_soup(bytes in rusty_bytes()) {
        let source = String::from_utf8_lossy(&bytes).into_owned();
        // The solver-path scoping makes crates/lp the rule-densest target.
        let (findings, waivers) =
            audit_source("crates/lp/src/soup.rs", FileClass::Library, false, &source);
        // Waived findings always carry their reason.
        for f in findings.iter().filter(|f| f.waived) {
            prop_assert!(f.waiver_reason.is_some());
        }
        let _ = waivers;
    }

    #[test]
    fn lexed_text_reassembles_into_the_source(ws in vec(0..3usize, 0..64)) {
        // Token text concatenated with the skipped whitespace must account
        // for every input byte: build a source from known tokens + noise.
        let parts = ["fn", "0.5", "==", "\"s\"", "// c\n", "ident"];
        let source: String = ws.iter().map(|&i| parts[i % parts.len()]).collect();
        let total: usize = lex(&source).iter().map(|t| t.text.len()).sum();
        prop_assert!(total <= source.len());
    }
}

#[test]
fn token_kinds_cover_basics() {
    let toks = lex("fn f() { 1.0 == x /* b */ }");
    assert!(toks.iter().any(|t| t.kind == TokenKind::Float && t.text == "1.0"));
    assert!(toks.iter().any(|t| t.kind == TokenKind::BlockComment));
}
