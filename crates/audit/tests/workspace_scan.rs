//! Lints the actual workspace tree. This is the same scan `fbb lint` (and
//! the check.sh gate) runs; keeping it as a test means `cargo test` alone
//! catches a newly introduced violation.

use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/audit -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().and_then(Path::parent).expect("workspace root")
}

#[test]
fn workspace_is_lint_clean() {
    let report = fbb_audit::audit_workspace(workspace_root()).expect("scan workspace");
    assert!(report.files_scanned > 20, "walker found too few files: {}", report.files_scanned);
    assert!(report.is_clean(), "workspace has lint violations:\n{}", report.summary());
}

#[test]
fn workspace_has_no_stale_waivers() {
    let report = fbb_audit::audit_workspace(workspace_root()).expect("scan workspace");
    let stale: Vec<String> = report
        .waivers
        .iter()
        .filter(|w| !w.used)
        .map(|w| format!("{}:{} {}", w.path, w.line, w.rule))
        .collect();
    assert!(stale.is_empty(), "stale waivers present: {stale:?}");
}

#[test]
fn workspace_is_deep_lint_clean() {
    let report = fbb_audit::audit_workspace_deep(workspace_root()).expect("deep-scan workspace");
    assert!(report.is_clean(), "workspace has deep lint violations:\n{}", report.summary());
    let stale: Vec<String> = report
        .waivers
        .iter()
        .filter(|w| !w.used)
        .map(|w| format!("{}:{} {}", w.path, w.line, w.rule))
        .collect();
    assert!(stale.is_empty(), "stale waivers present under the deep pass: {stale:?}");
}

#[test]
fn every_trust_boundary_entry_is_proven_panic_free() {
    let report = fbb_audit::audit_workspace_deep(workspace_root()).expect("deep-scan workspace");
    let deep = report.deep.as_ref().expect("deep pass ran");
    assert!(!deep.entries.is_empty(), "audit.toml declares trust-boundary entries");
    let unproven: Vec<&str> = deep
        .entries
        .iter()
        .filter(|e| !e.panic_free)
        .map(|e| e.entry.as_str())
        .collect();
    assert!(
        unproven.is_empty(),
        "trust-boundary entries with reachable panics: {unproven:?}\n{}",
        report.summary()
    );
    assert!(deep.parse_fns > 500, "parser found too few fns: {}", deep.parse_fns);
    assert!(deep.callgraph_edges > 1000, "call graph too sparse: {}", deep.callgraph_edges);
    assert_eq!(deep.panic_reachable, 0, "panic sites reachable from the trust boundary");
}
