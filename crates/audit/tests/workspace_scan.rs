//! Lints the actual workspace tree. This is the same scan `fbb lint` (and
//! the check.sh gate) runs; keeping it as a test means `cargo test` alone
//! catches a newly introduced violation.

use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/audit -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().and_then(Path::parent).expect("workspace root")
}

#[test]
fn workspace_is_lint_clean() {
    let report = fbb_audit::audit_workspace(workspace_root()).expect("scan workspace");
    assert!(report.files_scanned > 20, "walker found too few files: {}", report.files_scanned);
    assert!(report.is_clean(), "workspace has lint violations:\n{}", report.summary());
}

#[test]
fn workspace_has_no_stale_waivers() {
    let report = fbb_audit::audit_workspace(workspace_root()).expect("scan workspace");
    let stale: Vec<String> = report
        .waivers
        .iter()
        .filter(|w| !w.used)
        .map(|w| format!("{}:{} {}", w.path, w.line, w.rule))
        .collect();
    assert!(stale.is_empty(), "stale waivers present: {stale:?}");
}
