//! Robustness properties for the token-tree parser behind the deep rules:
//! `parse_file` consumes every `.rs` file in the tree, so it must never
//! panic on arbitrary input and must keep its per-function sites anchored
//! to real line numbers.

use fbb_audit::context::FileCtx;
use fbb_audit::parse::parse_file;
use fbb_audit::FileClass;
use proptest::collection::vec;
use proptest::prelude::*;

/// Bytes weighted toward the characters that steer the parser's block and
/// call tracking: braces, parens, dots, colons, keywords' letters.
fn rusty_bytes() -> impl Strategy<Value = Vec<u8>> {
    let alphabet = b"\"'/*#rb\\ \n\t{}()[]=!.:;_09azAZ<>&,\xff\x00";
    vec(0..alphabet.len(), 0..256)
        .prop_map(move |idx| idx.into_iter().map(|i| alphabet[i]).collect())
}

/// Token soup biased toward the constructs the parser keys on: item
/// keywords, panic macros, method calls, casts, and index brackets.
fn rusty_items() -> impl Strategy<Value = String> {
    let parts = [
        "fn ", "impl ", "mod ", "const ", "struct ", "{", "}", "(", ")", "[", "]", "f",
        "Self", "::", ".", ";", "=", "unwrap", "expect", "wait", "lock", "panic!", "as ",
        "u8", "usize", "x", "#[test]", "#[cfg(test)]", "// c\n", "\"s\"", "0x1f", "1.5",
        "<", ">", "for ", "while ", "loop ", "let ", "match ", "&", ",", "'a",
    ];
    vec(0..parts.len(), 0..96)
        .prop_map(move |idx| idx.into_iter().map(|i| parts[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in vec(any::<u8>(), 0..512)) {
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let ctx = FileCtx::analyze("crates/db/src/soup.rs", FileClass::Library, false, &source);
        let _ = parse_file(&ctx, "fbb_db");
    }

    #[test]
    fn parser_never_panics_on_rusty_soup(bytes in rusty_bytes()) {
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let ctx = FileCtx::analyze("crates/serve/src/soup.rs", FileClass::Library, false, &source);
        let _ = parse_file(&ctx, "fbb_serve");
    }

    #[test]
    fn parser_sites_stay_anchored_on_item_soup(soup in rusty_items()) {
        let lines = u32::try_from(soup.lines().count().max(1)).unwrap_or(u32::MAX);
        let ctx = FileCtx::analyze("crates/db/src/soup.rs", FileClass::Library, false, &soup);
        let parsed = parse_file(&ctx, "fbb_db");
        for f in &parsed.fns {
            prop_assert!(!f.segments.is_empty(), "every fn carries a qualified name");
            prop_assert_eq!(f.segments.first().map(String::as_str), Some("fbb_db"));
            let lines_of = f
                .unwraps
                .iter()
                .chain(&f.indexes)
                .map(|s| s.line)
                .chain(f.casts.iter().map(|c| c.line));
            for line in lines_of {
                prop_assert!(line >= 1 && line <= lines,
                    "site line {line} outside the {lines}-line source");
            }
        }
    }
}

#[test]
fn parser_reads_a_realistic_item() {
    let src = "impl Decoder { fn u8(&mut self) -> u8 { self.data[0] as u8 } }";
    let ctx = FileCtx::analyze("crates/db/src/wire.rs", FileClass::Library, false, src);
    let parsed = parse_file(&ctx, "fbb_db");
    assert_eq!(parsed.fns.len(), 1);
    assert_eq!(parsed.fns[0].segments, ["fbb_db", "wire", "Decoder", "u8"]);
    assert_eq!(parsed.fns[0].indexes.len(), 1);
    assert_eq!(parsed.fns[0].casts.len(), 1);
}
