//! The planted-violation fixtures are the analyzer's own regression armor:
//! every rule must fire on them (a blind rule means the analyzer rotted),
//! every rule's waiver path must be exercised, and the deliberately stale
//! waiver must be surfaced.

use std::path::Path;

use fbb_audit::{audit_fixtures, AuditReport, RULES};

fn fixtures() -> AuditReport {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/audit sits two levels under the workspace root");
    audit_fixtures(root).expect("fixtures directory lints")
}

#[test]
fn every_rule_fires_on_the_fixtures() {
    let report = fixtures();
    let fired = report.rules_fired();
    for rule in RULES {
        assert!(
            fired.contains(&rule.id),
            "rule {} produced no finding on the fixtures — planted violation lost?\n{}",
            rule.id,
            report.summary()
        );
    }
}

#[test]
fn every_rule_has_an_unwaived_violation() {
    let report = fixtures();
    for rule in RULES {
        assert!(
            report.violations().any(|f| f.rule == rule.id),
            "rule {} has only waived hits; the fixture gate needs a live violation",
            rule.id
        );
    }
}

#[test]
fn every_waivable_rule_exercises_the_waiver_path() {
    let report = fixtures();
    for rule in RULES.iter().filter(|r| r.id != "FA000") {
        assert!(
            report.findings.iter().any(|f| f.rule == rule.id && f.waived),
            "rule {} has no waived fixture hit — waiver matching untested",
            rule.id
        );
    }
}

#[test]
fn fa000_is_never_waived_even_in_fixtures() {
    let report = fixtures();
    assert!(report.findings.iter().any(|f| f.rule == "FA000"));
    assert!(report.findings.iter().filter(|f| f.rule == "FA000").all(|f| !f.waived));
}

#[test]
fn the_unknown_rule_waiver_is_surfaced_as_stale() {
    let report = fixtures();
    assert!(
        report.waivers.iter().any(|w| w.rule == "FA999" && !w.used),
        "the fa000 fixture's unknown-rule waiver must show up stale"
    );
}

#[test]
fn fixture_virtual_paths_scope_the_rules() {
    let report = fixtures();
    // FA001 only fires under crates/lp or crates/sta: the FA001 fixture
    // declares a crates/lp virtual path, so every FA001 finding is there.
    assert!(report
        .findings
        .iter()
        .filter(|f| f.rule == "FA001")
        .all(|f| f.path.starts_with("crates/lp/") || f.path.starts_with("crates/sta/")));
    // Every fixture ends with a #[cfg(test)] module that would fire its own
    // rule; the test-code exemption must keep all of those silent. The FA001
    // fixture's test module sits past line 17 — nothing may fire there.
    assert!(report
        .findings
        .iter()
        .filter(|f| f.path == "crates/lp/src/planted_fa001.rs")
        .all(|f| f.line < 18));
}
