//! Owned snapshot of the telemetry state and its serializations.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Aggregate of one value distribution (see `fbb_telemetry::record`).
#[derive(Debug, Clone, PartialEq)]
pub struct StatSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Default for StatSummary {
    fn default() -> Self {
        StatSummary { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

impl StatSummary {
    /// Folds one observation in.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Arithmetic mean (`0` before any observation).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Aggregate of one named span (see `fbb_telemetry::span`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSummary {
    /// Completed spans.
    pub count: u64,
    /// Total nanoseconds across spans.
    pub total_ns: u64,
    /// Shortest span, nanoseconds.
    pub min_ns: u64,
    /// Longest span, nanoseconds.
    pub max_ns: u64,
}

impl Default for SpanSummary {
    fn default() -> Self {
        SpanSummary { count: 0, total_ns: 0, min_ns: u64::MAX, max_ns: 0 }
    }
}

impl SpanSummary {
    /// Folds one completed span in.
    pub fn observe(&mut self, dur_ns: u64) {
        self.count += 1;
        self.total_ns += dur_ns;
        self.min_ns = self.min_ns.min(dur_ns);
        self.max_ns = self.max_ns.max(dur_ns);
    }
}

/// One completed span occurrence, timestamped against the sink's epoch
/// (enable/reset time). The event log is bounded; see
/// [`MAX_TRACE_EVENTS`](crate::MAX_TRACE_EVENTS).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name.
    pub name: String,
    /// Start offset from the epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// Point-in-time copy of every aggregate held by a
/// [`MemorySink`](crate::MemorySink).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Value distributions by name.
    pub stats: BTreeMap<String, StatSummary>,
    /// Span aggregates by name.
    pub spans: BTreeMap<String, SpanSummary>,
    /// Recent span occurrences (bounded).
    pub events: Vec<TraceEvent>,
    /// Spans whose events were dropped once the log filled up.
    pub dropped_events: u64,
}

impl Snapshot {
    /// Reads one counter back.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Reads one value distribution back.
    pub fn stat(&self, name: &str) -> Option<&StatSummary> {
        self.stats.get(name)
    }

    /// Reads one span aggregate back.
    pub fn span(&self, name: &str) -> Option<&SpanSummary> {
        self.spans.get(name)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.stats.is_empty() && self.spans.is_empty()
    }

    /// Serializes to a flat `{"key": number}` JSON object — the same shape
    /// `fbb_bench::report::BenchReport` reads and merges, so a telemetry
    /// snapshot can be folded into `BENCH_sta.json` alongside bench numbers.
    ///
    /// Key schema (all values finite numbers, keys sorted):
    ///
    /// * counters serialize under their own name;
    /// * each stat `s` expands to `s_count`, `s_sum`, `s_min`, `s_max`,
    ///   `s_mean` (bounds omitted while empty);
    /// * each span `p` expands to `p_calls`, `p_total_ns`, `p_min_ns`,
    ///   `p_max_ns`;
    /// * `telemetry_dropped_events` appears when the trace log overflowed.
    ///
    /// Trace events are deliberately excluded: the flat form is for merge
    /// and diffing, the event log is for the human summary.
    pub fn to_flat_json(&self) -> String {
        let mut entries: Vec<(String, String)> = Vec::new();
        for (name, &value) in &self.counters {
            entries.push((name.clone(), format!("{value}")));
        }
        for (name, stat) in &self.stats {
            entries.push((format!("{name}_count"), format!("{}", stat.count)));
            if stat.count > 0 {
                entries.push((format!("{name}_sum"), fmt_f64(stat.sum)));
                entries.push((format!("{name}_min"), fmt_f64(stat.min)));
                entries.push((format!("{name}_max"), fmt_f64(stat.max)));
                entries.push((format!("{name}_mean"), fmt_f64(stat.mean())));
            }
        }
        for (name, span) in &self.spans {
            entries.push((format!("{name}_calls"), format!("{}", span.count)));
            entries.push((format!("{name}_total_ns"), format!("{}", span.total_ns)));
            if span.count > 0 {
                entries.push((format!("{name}_min_ns"), format!("{}", span.min_ns)));
                entries.push((format!("{name}_max_ns"), format!("{}", span.max_ns)));
            }
        }
        if self.dropped_events > 0 {
            entries.push(("telemetry_dropped_events".into(), format!("{}", self.dropped_events)));
        }
        entries.sort();
        let mut out = String::from("{\n");
        for (i, (key, value)) in entries.iter().enumerate() {
            let comma = if i + 1 < entries.len() { "," } else { "" };
            let _ = writeln!(out, "  \"{key}\": {value}{comma}");
        }
        out.push_str("}\n");
        out
    }

    /// Writes [`Snapshot::to_flat_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_flat_json(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_flat_json())
    }

    /// Human-readable summary table: counters, value distributions, and
    /// span timings, one aligned section each.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("telemetry: nothing recorded\n");
            return out;
        }
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<42} {value:>12}");
            }
        }
        if !self.stats.is_empty() {
            out.push_str("distributions                                     count         mean          min          max\n");
            for (name, s) in &self.stats {
                let _ = writeln!(
                    out,
                    "  {name:<42} {:>8} {:>12.3} {:>12.3} {:>12.3}",
                    s.count,
                    s.mean(),
                    if s.count > 0 { s.min } else { 0.0 },
                    if s.count > 0 { s.max } else { 0.0 },
                );
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans                                             calls    total[ms]     mean[us]      max[us]\n");
            for (name, s) in &self.spans {
                let mean_us =
                    if s.count == 0 { 0.0 } else { s.total_ns as f64 / s.count as f64 / 1e3 };
                let _ = writeln!(
                    out,
                    "  {name:<42} {:>8} {:>12.3} {:>12.3} {:>12.3}",
                    s.count,
                    s.total_ns as f64 / 1e6,
                    mean_us,
                    s.max_ns as f64 / 1e3,
                );
            }
        }
        if self.dropped_events > 0 {
            let _ = writeln!(out, "  ({} trace events dropped)", self.dropped_events);
        }
        out
    }
}

/// Finite decimal form, diff-friendly, parseable by `f64::parse`.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("lp_simplex_pivots".into(), 42);
        let mut stat = StatSummary::default();
        stat.observe(2.0);
        stat.observe(4.0);
        snap.stats.insert("sta_retime_cone_nodes".into(), stat);
        let mut span = SpanSummary::default();
        span.observe(1_500);
        snap.spans.insert("ilp_solve".into(), span);
        snap
    }

    #[test]
    fn flat_json_schema() {
        let json = sample().to_flat_json();
        assert!(json.contains("\"lp_simplex_pivots\": 42"));
        assert!(json.contains("\"sta_retime_cone_nodes_count\": 2"));
        assert!(json.contains("\"sta_retime_cone_nodes_mean\": 3.0"));
        assert!(json.contains("\"ilp_solve_calls\": 1"));
        assert!(json.contains("\"ilp_solve_total_ns\": 1500"));
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        // No trailing comma before the closing brace.
        assert!(!json.contains(",\n}"));
    }

    #[test]
    fn flat_json_keys_are_sorted() {
        let json = sample().to_flat_json();
        let keys: Vec<&str> = json
            .lines()
            .filter_map(|l| l.trim().strip_prefix('"'))
            .filter_map(|l| l.split('"').next())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn summary_mentions_every_section() {
        let text = sample().summary();
        assert!(text.contains("counters"));
        assert!(text.contains("distributions"));
        assert!(text.contains("spans"));
        assert!(text.contains("lp_simplex_pivots"));
        assert!(Snapshot::default().summary().contains("nothing recorded"));
    }

    #[test]
    fn empty_stat_serializes_count_only() {
        let mut snap = Snapshot::default();
        snap.stats.insert("empty".into(), StatSummary::default());
        let json = snap.to_flat_json();
        assert!(json.contains("\"empty_count\": 0"));
        assert!(!json.contains("empty_min"), "no infinite bounds in JSON");
    }
}
