//! Lightweight, std-only telemetry for the clustered-FBB stack: monotonic
//! counters, value distributions, and span-style timers, aggregated in a
//! process-global [`MemorySink`] and exported as a flat JSON snapshot or a
//! human-readable summary table.
//!
//! # Zero cost when disabled
//!
//! Telemetry is **off by default**. Every recording entry point
//! ([`counter`], [`record`], [`span`], [`time`]) begins with one relaxed
//! atomic load; while disabled nothing else executes — no allocation, no
//! locking, no clock read — and dispatch targets a [`NoopSink`] behind a
//! `&dyn Sink` trait object. Instrumented hot paths therefore pay a single
//! predictable branch. Code that aggregates many increments locally (the
//! simplex counts pivots in plain integer fields and flushes once per solve)
//! pays even that branch only once.
//!
//! # Determinism
//!
//! Counters are exact integer sums, so totals are identical no matter how
//! recording interleaves across `fbb_sta::par` workers: for a fixed seed and
//! `FBB_THREADS` setting, a pipeline run produces a bit-identical counter
//! set (asserted by the workspace's `telemetry_determinism` test). Float
//! distributions are deterministic when recorded in a fixed order — record
//! them from the coordinating thread, after parallel results are collected
//! in input order. Span durations are wall-clock and never deterministic.
//!
//! # Example
//!
//! ```
//! fbb_telemetry::reset();
//! fbb_telemetry::enable();
//! fbb_telemetry::counter("solves", 1);
//! fbb_telemetry::record("cone_nodes", 17.0);
//! let answer = fbb_telemetry::time("work", || 6 * 7);
//! assert_eq!(answer, 42);
//!
//! let snap = fbb_telemetry::snapshot();
//! assert_eq!(snap.counter("solves"), Some(1));
//! assert!(snap.to_flat_json().contains("\"cone_nodes_mean\": 17.0"));
//! fbb_telemetry::disable();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sink;
mod snapshot;

pub use sink::{MemorySink, NoopSink, Sink, MAX_TRACE_EVENTS};
pub use snapshot::{Snapshot, SpanSummary, StatSummary, TraceEvent};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NOOP: NoopSink = NoopSink;

/// The process-global aggregation sink (lives for the whole process; its
/// contents are governed by [`enable`]/[`reset`]).
fn memory() -> &'static MemorySink {
    static MEMORY: OnceLock<MemorySink> = OnceLock::new();
    MEMORY.get_or_init(MemorySink::new)
}

/// The currently active sink as a trait object: the global [`MemorySink`]
/// when enabled, a [`NoopSink`] otherwise.
fn active() -> &'static dyn Sink {
    if is_enabled() {
        memory()
    } else {
        &NOOP
    }
}

/// Whether telemetry is currently recording.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on (process-wide). Previously accumulated aggregates are
/// kept; call [`reset`] first for a clean slate.
pub fn enable() {
    memory(); // materialize the sink (and its span epoch) eagerly
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off. Aggregates are kept and can still be snapshotted.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears all aggregates and restarts the span epoch.
pub fn reset() {
    memory().reset();
}

/// Adds `delta` to the named monotonic counter. No-op while disabled.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    active().add(name, delta);
}

/// Records one observation of a named value distribution (count/sum/min/max
/// are aggregated). No-op while disabled. Non-finite values are dropped so
/// snapshots always serialize to valid JSON.
#[inline]
pub fn record(name: &'static str, value: f64) {
    if !is_enabled() || !value.is_finite() {
        return;
    }
    active().record(name, value);
}

/// Starts a span timer; the elapsed time is recorded under `name` when the
/// returned guard drops. While disabled the guard is inert (no clock read).
///
/// ```
/// {
///     let _span = fbb_telemetry::span("ilp_solve");
///     // ... work ...
/// } // recorded here
/// ```
#[inline]
pub fn span(name: &'static str) -> Span {
    Span { name, start: if is_enabled() { Some(Instant::now()) } else { None } }
}

/// Times `f` as a span named `name` and returns its result.
#[inline]
pub fn time<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let _span = span(name);
    f()
}

/// Times `f` and adds the elapsed nanoseconds to the **counter** `name`.
///
/// Unlike [`time`], which feeds the span machinery (`p_calls`,
/// `p_total_ns`, …), this sums straight into one exactly-named counter —
/// the right shape for contract keys like `db_encode_ns` that downstream
/// tooling looks up verbatim in the flat JSON snapshot. Durations beyond
/// `u64::MAX` nanoseconds saturate. While disabled, no clock is read.
#[inline]
pub fn time_counter_ns<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    if !is_enabled() {
        return f();
    }
    let start = Instant::now();
    let result = f();
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    counter(name, ns);
    result
}

/// Snapshot of the global sink's aggregates (works while disabled too, e.g.
/// to export after a run has been stopped).
pub fn snapshot() -> Snapshot {
    memory().snapshot()
}

/// Guard returned by [`span`]; records the elapsed time on drop.
#[derive(Debug)]
#[must_use = "a span records when the guard drops; binding it to _ drops immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Ends the span now (instead of at scope exit).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            if is_enabled() {
                active().span_ns(self.name, start.elapsed().as_nanos() as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The global sink is process-wide state; tests that toggle it must not
    /// interleave.
    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().expect("test lock poisoned")
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = global_lock();
        reset();
        disable();
        counter("c", 1);
        record("r", 1.0);
        time("t", || ());
        assert!(snapshot().is_empty());
    }

    #[test]
    fn enabled_records_and_reset_clears() {
        let _guard = global_lock();
        reset();
        enable();
        counter("c", 2);
        counter("c", 3);
        record("r", 4.0);
        let result = time("t", || 7);
        assert_eq!(result, 7);
        let snap = snapshot();
        assert_eq!(snap.counter("c"), Some(5));
        assert_eq!(snap.stat("r").map(|s| s.count), Some(1));
        assert_eq!(snap.span("t").map(|s| s.count), Some(1));
        disable();
        reset();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn non_finite_records_are_dropped() {
        let _guard = global_lock();
        reset();
        enable();
        record("gap", f64::INFINITY);
        record("gap", f64::NAN);
        record("gap", 0.5);
        let snap = snapshot();
        assert_eq!(snap.stat("gap").map(|s| s.count), Some(1));
        disable();
        reset();
    }

    #[test]
    fn span_guard_records_on_drop() {
        let _guard = global_lock();
        reset();
        enable();
        let s = span("explicit");
        s.end();
        {
            let _s = span("scoped");
        }
        let snap = snapshot();
        assert_eq!(snap.span("explicit").map(|s| s.count), Some(1));
        assert_eq!(snap.span("scoped").map(|s| s.count), Some(1));
        disable();
        reset();
    }
}
