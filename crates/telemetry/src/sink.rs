//! Sink trait and the two built-in implementations.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::snapshot::{Snapshot, SpanSummary, StatSummary, TraceEvent};

/// Upper bound on retained trace events; further spans still aggregate into
/// their [`SpanSummary`] but are dropped from the event log (the drop count
/// is reported in the snapshot).
pub const MAX_TRACE_EVENTS: usize = 4096;

/// Destination of telemetry signals.
///
/// The crate dispatches through `&dyn Sink`: [`NoopSink`] when telemetry is
/// disabled (after a single relaxed atomic load on the fast path, nothing
/// else runs), [`MemorySink`] when enabled. Embedders forwarding telemetry
/// elsewhere (a metrics socket, a log file) can implement the trait and wrap
/// the calls around a [`MemorySink`] of their own.
pub trait Sink: Send + Sync {
    /// Adds `delta` to the named monotonic counter.
    fn add(&self, name: &'static str, delta: u64);
    /// Records one observation of a named value distribution.
    fn record(&self, name: &'static str, value: f64);
    /// Records one completed span of `dur_ns` nanoseconds ending now.
    fn span_ns(&self, name: &'static str, dur_ns: u64);
}

/// Sink that discards everything — the disabled-telemetry target.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn add(&self, _name: &'static str, _delta: u64) {}
    fn record(&self, _name: &'static str, _value: f64) {}
    fn span_ns(&self, _name: &'static str, _dur_ns: u64) {}
}

#[derive(Debug)]
struct State {
    counters: BTreeMap<&'static str, u64>,
    stats: BTreeMap<&'static str, StatSummary>,
    spans: BTreeMap<&'static str, SpanSummary>,
    events: Vec<TraceEvent>,
    dropped_events: u64,
    epoch: Instant,
}

impl State {
    fn new() -> Self {
        State {
            counters: BTreeMap::new(),
            stats: BTreeMap::new(),
            spans: BTreeMap::new(),
            events: Vec::new(),
            dropped_events: 0,
            epoch: Instant::now(),
        }
    }
}

/// Thread-safe in-memory aggregation sink.
///
/// Counters are exact sums and therefore order-independent: concurrent
/// recording from the worker pool yields the same totals as a serial run.
/// Value distributions keep count/sum/min/max; floating-point sums are only
/// reproducible when observations arrive in a fixed order, so callers record
/// `f64` values from the coordinating thread (a `fbb_sta::par::parallel_gen`
/// collect already returns results in input order) rather than from inside
/// workers.
#[derive(Debug)]
pub struct MemorySink {
    state: Mutex<State>,
}

impl Default for MemorySink {
    fn default() -> Self {
        Self::new()
    }
}

impl MemorySink {
    /// Empty sink; the span epoch starts now.
    pub fn new() -> Self {
        MemorySink { state: Mutex::new(State::new()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().expect("telemetry state poisoned")
    }

    /// Clears every counter, stat, span, and trace event and restarts the
    /// span epoch.
    pub fn reset(&self) {
        *self.lock() = State::new();
    }

    /// Copies the current aggregates into an owned [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let state = self.lock();
        Snapshot {
            counters: state.counters.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            stats: state.stats.iter().map(|(&k, v)| (k.to_string(), v.clone())).collect(),
            spans: state.spans.iter().map(|(&k, v)| (k.to_string(), v.clone())).collect(),
            events: state.events.clone(),
            dropped_events: state.dropped_events,
        }
    }
}

impl Sink for MemorySink {
    fn add(&self, name: &'static str, delta: u64) {
        *self.lock().counters.entry(name).or_insert(0) += delta;
    }

    fn record(&self, name: &'static str, value: f64) {
        self.lock().stats.entry(name).or_default().observe(value);
    }

    fn span_ns(&self, name: &'static str, dur_ns: u64) {
        let mut state = self.lock();
        state.spans.entry(name).or_default().observe(dur_ns);
        let end_ns = state.epoch.elapsed().as_nanos() as u64;
        if state.events.len() < MAX_TRACE_EVENTS {
            state.events.push(TraceEvent {
                name: name.to_string(),
                start_ns: end_ns.saturating_sub(dur_ns),
                dur_ns,
            });
        } else {
            state.dropped_events += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum() {
        let sink = MemorySink::new();
        sink.add("a", 2);
        sink.add("a", 3);
        sink.add("b", 1);
        let snap = sink.snapshot();
        assert_eq!(snap.counter("a"), Some(5));
        assert_eq!(snap.counter("b"), Some(1));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn stats_track_bounds() {
        let sink = MemorySink::new();
        for v in [3.0, -1.0, 7.5] {
            sink.record("x", v);
        }
        let snap = sink.snapshot();
        let stat = snap.stat("x").expect("recorded");
        assert_eq!(stat.count, 3);
        assert!((stat.min - -1.0).abs() < 1e-12);
        assert!((stat.max - 7.5).abs() < 1e-12);
        assert!((stat.mean() - 9.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn spans_aggregate_and_log_events() {
        let sink = MemorySink::new();
        sink.span_ns("solve", 1_000);
        sink.span_ns("solve", 3_000);
        let snap = sink.snapshot();
        let span = snap.span("solve").expect("recorded");
        assert_eq!(span.count, 2);
        assert_eq!(span.total_ns, 4_000);
        assert_eq!(span.min_ns, 1_000);
        assert_eq!(span.max_ns, 3_000);
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.dropped_events, 0);
    }

    #[test]
    fn event_log_is_bounded() {
        let sink = MemorySink::new();
        for _ in 0..MAX_TRACE_EVENTS + 10 {
            sink.span_ns("s", 1);
        }
        let snap = sink.snapshot();
        assert_eq!(snap.events.len(), MAX_TRACE_EVENTS);
        assert_eq!(snap.dropped_events, 10);
        assert_eq!(snap.span("s").expect("recorded").count as usize, MAX_TRACE_EVENTS + 10);
    }

    #[test]
    fn reset_clears_everything() {
        let sink = MemorySink::new();
        sink.add("a", 1);
        sink.record("x", 1.0);
        sink.span_ns("s", 1);
        sink.reset();
        let snap = sink.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.stats.is_empty());
        assert!(snap.spans.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn noop_discards() {
        let sink = NoopSink;
        sink.add("a", 1);
        sink.record("x", 1.0);
        sink.span_ns("s", 1);
    }

    #[test]
    fn concurrent_adds_are_exact() {
        let sink = MemorySink::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        sink.add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(sink.snapshot().counter("hits"), Some(8000));
    }
}
