//! Std-only scoped-thread worker pool for embarrassingly parallel loops.
//!
//! The allocators and the Monte Carlo sweep all share the same shape of hot
//! loop: evaluate N independent candidates (bias assignments, budgets,
//! samples, paths) and collect the results in order. [`parallel_map`] and
//! [`parallel_gen`] run such loops across `std::thread::scope` workers
//! without any external dependency, falling back to a plain serial loop when
//! only one worker is available or the job is trivially small.
//!
//! # Determinism
//!
//! Workers claim indices from a shared atomic counter but write each result
//! into its own slot, so the returned `Vec` is always in input order — the
//! output is identical to the serial loop regardless of scheduling. Callers
//! stay reproducible as long as each job is a pure function of its index.
//!
//! # Sizing
//!
//! The pool size is `min(jobs / MIN_JOBS_PER_WORKER, threads())` where
//! [`threads`] defaults to [`std::thread::available_parallelism`] and can be
//! pinned with the `FBB_THREADS` environment variable (e.g. `FBB_THREADS=1`
//! forces every loop serial — useful for benchmark baselines and bisection).
//! Dividing by [`MIN_JOBS_PER_WORKER`] keeps the pool from spawning when
//! each worker would get so little work that thread startup dominates —
//! small loops run serially instead of paying for threads that slow them
//! down.
//!
//! # Daemons: pass the budget explicitly
//!
//! `FBB_THREADS` is a **startup-time** knob. It is the right interface for
//! a CLI invocation (one process, one environment, one budget), but a
//! long-running service must not let an ambient process-global read decide
//! its pool size: the operator configures the worker count when the daemon
//! starts (`fbb serve --workers N`), and resizing means restarting with a
//! new value — the environment is never re-consulted to grow or shrink a
//! live pool. Services therefore resolve their budget **once at startup**
//! (defaulting to [`threads`] if unconfigured) and thread it through the
//! explicit-budget entry points [`worker_count_in`], [`parallel_gen_in`],
//! and [`parallel_map_in`] instead of calling the env-reading [`threads`]
//! from request paths.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Worker-thread budget for parallel loops.
///
/// Reads the `FBB_THREADS` environment variable (clamped to ≥ 1) on every
/// call — so tests and benches can toggle it at runtime — and falls back to
/// [`std::thread::available_parallelism`], which is cached: on Linux it
/// walks cgroup files and costs microseconds per query, far too slow for a
/// function consulted inside allocator hot loops.
pub fn threads() -> usize {
    if let Ok(v) = std::env::var("FBB_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    static HARDWARE: OnceLock<usize> = OnceLock::new();
    *HARDWARE
        .get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Minimum jobs a worker must be able to claim before spawning it pays off.
///
/// Spawning an OS thread costs tens of microseconds; a worker that will only
/// ever claim one or two jobs of comparable size loses that startup cost.
/// The benchmark that exposed this (`sta_engine`, Monte Carlo over 64 dies)
/// showed the pool *slowing the loop down* when the per-worker share fell
/// below a handful of jobs, so [`worker_count`] refuses to spread jobs
/// thinner than this.
pub const MIN_JOBS_PER_WORKER: usize = 4;

/// Number of workers a loop over `jobs` items would use.
///
/// At most `jobs / MIN_JOBS_PER_WORKER` workers are spawned (never more
/// than [`threads`]); loops too small to feed every worker at least
/// [`MIN_JOBS_PER_WORKER`] jobs shrink the pool, down to `1` — fully
/// serial, no threads spawned.
pub fn worker_count(jobs: usize) -> usize {
    worker_count_in(threads(), jobs)
}

/// [`worker_count`] with an explicit thread budget instead of the
/// env-derived [`threads`] value.
///
/// Daemons resolve their budget once at startup (`fbb serve --workers N`)
/// and pass it here per loop, so a request never consults the process
/// environment. Budget `0` is treated as `1` — fully serial.
pub fn worker_count_in(budget: usize, jobs: usize) -> usize {
    budget.min(jobs / MIN_JOBS_PER_WORKER).max(1)
}

/// Runs `f(0..n)` across the worker pool and returns the results in index
/// order. Equivalent to `(0..n).map(f).collect()` but concurrent.
///
/// `f` must be safe to call from multiple threads; results are deterministic
/// when `f` is a pure function of its index.
///
/// # Panics
///
/// Propagates the first panic raised inside `f`.
pub fn parallel_gen<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    parallel_gen_in(threads(), n, f)
}

/// [`parallel_gen`] with an explicit thread budget instead of the
/// env-derived [`threads`] value — the entry point for daemons that sized
/// their pool at startup (see the module docs). The budget is still subject
/// to [`MIN_JOBS_PER_WORKER`] clamping, so small loops stay serial.
///
/// # Panics
///
/// Propagates the first panic raised inside `f`.
pub fn parallel_gen_in<R, F>(budget: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = worker_count_in(budget, n);
    let serial = workers <= 1 || n <= 1;
    if fbb_telemetry::is_enabled() {
        // NOTE: `par_*` counters legitimately vary with `FBB_THREADS` (the
        // serial/parallel split depends on the worker budget); determinism
        // comparisons across thread counts must exclude them.
        fbb_telemetry::counter("par_loops", 1);
        fbb_telemetry::counter("par_jobs", n as u64);
        if !serial {
            fbb_telemetry::counter("par_parallel_loops", 1);
            fbb_telemetry::counter("par_workers_spawned", workers as u64);
        }
    }
    if serial {
        return (0..n).map(f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Maps `f` over `items` across the worker pool, preserving input order.
///
/// `f` receives `(index, &item)` so callers can derive per-item seeds or
/// labels without capturing extra state.
///
/// # Panics
///
/// Propagates the first panic raised inside `f`.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_gen(items.len(), |i| f(i, &items[i]))
}

/// [`parallel_map`] with an explicit thread budget (see [`parallel_gen_in`]).
///
/// # Panics
///
/// Propagates the first panic raised inside `f`.
pub fn parallel_map_in<T, R, F>(budget: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_gen_in(budget, items.len(), |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_matches_serial_map() {
        let expect: Vec<usize> = (0..257).map(|i| i * i).collect();
        assert_eq!(parallel_gen(257, |i| i * i), expect);
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<i64> = (0..500).rev().collect();
        let got = parallel_map(&items, |i, &x| (i as i64, x * 2));
        for (i, &(idx, doubled)) in got.iter().enumerate() {
            assert_eq!(idx, i as i64);
            assert_eq!(doubled, items[i] * 2);
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(parallel_gen(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_gen(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(worker_count(0), 1);
        assert!(worker_count(1) == 1);
        assert!(worker_count(10_000) >= 1);
        assert!(worker_count(10_000) <= threads());
    }

    #[test]
    fn small_loops_stay_serial() {
        // Below MIN_JOBS_PER_WORKER jobs there is nothing to split,
        // whatever the thread budget says.
        for jobs in 0..MIN_JOBS_PER_WORKER {
            assert_eq!(worker_count(jobs), 1, "jobs={jobs}");
        }
        // And the pool never spreads jobs thinner than the threshold.
        for jobs in [8, 64, 1000] {
            assert!(worker_count(jobs) <= jobs / MIN_JOBS_PER_WORKER, "jobs={jobs}");
        }
    }

    #[test]
    fn explicit_budget_ignores_env() {
        // A fixed budget must behave identically whatever FBB_THREADS says;
        // these are pure-arithmetic checks, no env mutation required.
        assert_eq!(worker_count_in(0, 10_000), 1);
        assert_eq!(worker_count_in(1, 10_000), 1);
        assert_eq!(worker_count_in(4, 10_000), 4);
        assert_eq!(worker_count_in(4, 8), 2); // MIN_JOBS_PER_WORKER clamp
        let expect: Vec<usize> = (0..257).map(|i| i * 3).collect();
        assert_eq!(parallel_gen_in(1, 257, |i| i * 3), expect);
        assert_eq!(parallel_gen_in(8, 257, |i| i * 3), expect);
    }

    #[test]
    fn map_in_matches_map() {
        let items: Vec<i64> = (0..100).collect();
        let got = parallel_map_in(3, &items, |i, &x| x + i as i64);
        let expect: Vec<i64> = (0..100).map(|x| x * 2).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            parallel_gen(64, |i| {
                if i == 17 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}
