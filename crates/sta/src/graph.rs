//! The levelized timing graph.

use fbb_netlist::{GateId, Netlist, NetlistError};

use crate::analysis::TimingAnalysis;

/// A levelized timing graph over one netlist.
///
/// Flip-flops are timing boundaries: their Q output is a startpoint whose
/// arrival is the clk→Q delay of the flop, and their D input is an endpoint.
/// Primary inputs arrive at time 0; primary outputs are endpoints.
#[derive(Debug, Clone)]
pub struct TimingGraph<'nl> {
    pub(crate) netlist: &'nl Netlist,
    /// Topological order of the combinational gates.
    pub(crate) topo: Vec<GateId>,
    /// Combinational fanin gates per gate (drivers of its input nets that
    /// are combinational), deduplicated.
    pub(crate) comb_fanin: Vec<Vec<GateId>>,
    /// Sequential (DFF) drivers feeding each gate, deduplicated.
    pub(crate) seq_fanin: Vec<Vec<GateId>>,
    /// Combinational fanout gates per gate, deduplicated.
    pub(crate) comb_fanout: Vec<Vec<GateId>>,
    /// Whether the gate's output is a timing endpoint (drives a PO or a DFF
    /// D pin). Sequential gates are never marked (their Q is a startpoint).
    pub(crate) is_endpoint: Vec<bool>,
}

impl<'nl> TimingGraph<'nl> {
    /// Builds the timing graph.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
    pub fn new(netlist: &'nl Netlist) -> Result<Self, NetlistError> {
        let topo = netlist.topo_order()?;
        let n = netlist.gate_count();
        let mut comb_fanin = vec![Vec::new(); n];
        let mut seq_fanin = vec![Vec::new(); n];
        let mut comb_fanout = vec![Vec::new(); n];
        let mut is_endpoint = vec![false; n];

        for (id, gate) in netlist.iter_gates() {
            for &input in &gate.inputs {
                if let Some(driver) = netlist.net(input).driver {
                    if netlist.gate(driver).cell.kind.is_sequential() {
                        if !seq_fanin[id.index()].contains(&driver) {
                            seq_fanin[id.index()].push(driver);
                        }
                    } else {
                        if !comb_fanin[id.index()].contains(&driver) {
                            comb_fanin[id.index()].push(driver);
                        }
                        if !gate.cell.kind.is_sequential()
                            && !comb_fanout[driver.index()].contains(&id)
                        {
                            comb_fanout[driver.index()].push(id);
                        }
                    }
                }
            }
            // A combinational gate driving a DFF's D pin ends a path there.
            if gate.cell.kind.is_sequential() {
                for &input in &gate.inputs {
                    if let Some(driver) = netlist.net(input).driver {
                        if !netlist.gate(driver).cell.kind.is_sequential() {
                            is_endpoint[driver.index()] = true;
                        }
                    }
                }
            }
        }
        for &out in netlist.outputs() {
            if let Some(driver) = netlist.net(out).driver {
                if !netlist.gate(driver).cell.kind.is_sequential() {
                    is_endpoint[driver.index()] = true;
                }
            }
        }
        // A combinational gate with no combinational fanout also terminates
        // its paths (dangling cones still carry cells that leak and can be
        // biased, so they participate in timing bookkeeping).
        for (id, gate) in netlist.iter_gates() {
            if !gate.cell.kind.is_sequential() && comb_fanout[id.index()].is_empty() {
                is_endpoint[id.index()] = true;
            }
        }

        Ok(TimingGraph { netlist, topo, comb_fanin, seq_fanin, comb_fanout, is_endpoint })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'nl Netlist {
        self.netlist
    }

    /// Number of gates (combinational + sequential).
    pub fn gate_count(&self) -> usize {
        self.netlist.gate_count()
    }

    /// Runs arrival/tail propagation for the given per-gate delays
    /// (picoseconds, indexed by [`GateId::index`]; a flip-flop's entry is its
    /// clk→Q delay).
    ///
    /// For repeated analyses that change only a few gates between calls
    /// (bias allocation, tuning loops), prefer
    /// [`IncrementalSta`](crate::IncrementalSta), which reuses this pass's
    /// results and re-propagates only the affected cone.
    ///
    /// # Example
    ///
    /// ```
    /// use fbb_netlist::generators;
    /// use fbb_sta::TimingGraph;
    ///
    /// let nl = generators::ripple_adder("add8", 8, false).expect("valid generator");
    /// let graph = TimingGraph::new(&nl).expect("acyclic");
    /// let delays = vec![10.0; nl.gate_count()];
    /// let analysis = graph.analyze(&delays);
    /// assert!(analysis.dcrit_ps() > 0.0);
    /// // Every gate's worst path is bounded by the critical delay.
    /// let slack = analysis.slack_through_ps(fbb_netlist::GateId::from_index(0));
    /// assert!(slack >= 0.0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `delays.len() != self.gate_count()`.
    pub fn analyze(&self, delays: &[f64]) -> TimingAnalysis<'_, 'nl> {
        assert_eq!(delays.len(), self.gate_count(), "one delay per gate required");
        // Counter only (no float observation): analyze() also runs on
        // `par` worker threads, where only order-independent integer sums
        // stay deterministic. Together with `sta_incremental_retimes` this
        // gives the full-vs-incremental hit ratio.
        fbb_telemetry::counter("sta_full_analyses", 1);
        let n = self.gate_count();
        let mut arrival = vec![0.0f64; n];
        let mut pred: Vec<Option<GateId>> = vec![None; n];
        let mut tail = vec![0.0f64; n];
        let mut succ: Vec<Option<GateId>> = vec![None; n];

        // Forward pass: arrival at each combinational gate's output.
        for &id in &self.topo {
            let i = id.index();
            let mut best = 0.0f64;
            let mut best_pred = None;
            for &p in &self.comb_fanin[i] {
                if arrival[p.index()] > best {
                    best = arrival[p.index()];
                    best_pred = Some(p);
                }
            }
            for &ff in &self.seq_fanin[i] {
                // DFF startpoint: clk->Q delay.
                if delays[ff.index()] > best {
                    best = delays[ff.index()];
                    best_pred = Some(ff);
                }
            }
            arrival[i] = best + delays[i];
            pred[i] = best_pred;
        }

        // Backward pass: tail = own delay + worst downstream tail.
        for &id in self.topo.iter().rev() {
            let i = id.index();
            let mut best = 0.0f64;
            let mut best_succ = None;
            for &s in &self.comb_fanout[i] {
                if tail[s.index()] > best {
                    best = tail[s.index()];
                    best_succ = Some(s);
                }
            }
            tail[i] = best + delays[i];
            succ[i] = best_succ;
        }
        // DFF tails: a flop's clk->Q launches into its combinational sinks.
        for (id, gate) in self.netlist.iter_gates() {
            if gate.cell.kind.is_sequential() {
                let q = gate.output;
                let mut best = 0.0f64;
                let mut best_succ = None;
                for &s in &self.netlist.net(q).sinks {
                    if !self.netlist.gate(s).cell.kind.is_sequential()
                        && tail[s.index()] > best
                    {
                        best = tail[s.index()];
                        best_succ = Some(s);
                    }
                }
                tail[id.index()] = best + delays[id.index()];
                succ[id.index()] = best_succ;
            }
        }

        let dcrit = self
            .topo
            .iter()
            .filter(|&&id| self.is_endpoint[id.index()])
            .map(|&id| arrival[id.index()])
            .fold(0.0f64, f64::max);

        TimingAnalysis {
            graph: self,
            delays: delays.to_vec(),
            arrival,
            pred,
            tail,
            succ,
            dcrit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbb_device::{CellKind, DriveStrength};
    use fbb_netlist::NetlistBuilder;

    #[test]
    fn endpoint_marking() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let w1 = b.gate(CellKind::Inv, DriveStrength::X1, &[a]).unwrap();
        let w2 = b.gate(CellKind::Inv, DriveStrength::X1, &[w1]).unwrap();
        let q = b.dff(DriveStrength::X1, w2).unwrap();
        let w3 = b.gate(CellKind::Inv, DriveStrength::X1, &[q]).unwrap();
        b.output(w3, "y");
        let nl = b.finish().unwrap();
        let g = TimingGraph::new(&nl).unwrap();
        // gate 1 (second inv) drives the DFF's D: endpoint.
        assert!(g.is_endpoint[1]);
        // gate 0 has comb fanout: not an endpoint.
        assert!(!g.is_endpoint[0]);
        // gate 3 drives the PO: endpoint.
        assert!(g.is_endpoint[3]);
        // the DFF itself is not an endpoint.
        assert!(!g.is_endpoint[2]);
    }

    #[test]
    fn chain_arrival_accumulates() {
        let mut b = NetlistBuilder::new("chain");
        let mut net = b.input("a");
        for _ in 0..5 {
            net = b.gate(CellKind::Inv, DriveStrength::X1, &[net]).unwrap();
        }
        b.output(net, "y");
        let nl = b.finish().unwrap();
        let g = TimingGraph::new(&nl).unwrap();
        let delays = vec![10.0; 5];
        let a = g.analyze(&delays);
        assert!((a.dcrit_ps() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn dff_launch_and_capture() {
        // in -> inv(10) -> DFF(clk->q 30) -> inv(10) -> out
        let mut b = NetlistBuilder::new("seq");
        let a = b.input("a");
        let w1 = b.gate(CellKind::Inv, DriveStrength::X1, &[a]).unwrap();
        let q = b.dff(DriveStrength::X1, w1).unwrap();
        let w2 = b.gate(CellKind::Inv, DriveStrength::X1, &[q]).unwrap();
        b.output(w2, "y");
        let nl = b.finish().unwrap();
        let g = TimingGraph::new(&nl).unwrap();
        // delays indexed by gate id: 0 = inv1, 1 = dff, 2 = inv2
        let a = g.analyze(&[10.0, 30.0, 10.0]);
        // Input path: 10 (ends at DFF D). Launch path: 30 + 10 = 40.
        assert!((a.dcrit_ps() - 40.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one delay per gate")]
    fn wrong_delay_len_panics() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let y = b.gate(CellKind::Inv, DriveStrength::X1, &[a]).unwrap();
        b.output(y, "y");
        let nl = b.finish().unwrap();
        let g = TimingGraph::new(&nl).unwrap();
        let _ = g.analyze(&[1.0, 2.0]);
    }
}
