//! Materialized timing paths.

use fbb_netlist::GateId;
use serde::{Deserialize, Serialize};

/// One materialized timing path: an ordered gate chain from a startpoint
/// (primary input or flip-flop Q) to an endpoint (primary output or
/// flip-flop D), with its total delay.
///
/// When the path launches from a flip-flop, the flop is the first gate in
/// [`TimingPath::gates`] and its clk→Q delay is included in
/// [`TimingPath::delay_ps`] — the flop sits in a row and is sped up by FBB
/// like any other cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingPath {
    /// Gates along the path, startpoint first.
    pub gates: Vec<GateId>,
    /// Total path delay in picoseconds.
    pub delay_ps: f64,
}

impl TimingPath {
    /// Path slack against a required time (`required − delay`).
    pub fn slack_ps(&self, required_ps: f64) -> f64 {
        required_ps - self.delay_ps
    }

    /// Number of gates on the path.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the path has no gates (never true for extracted paths).
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Re-derives the path delay from a per-gate delay table by summing the
    /// gates in path order.
    ///
    /// Useful as an independent consistency check on persisted paths: a path
    /// and delay vector loaded from external storage agree when the result
    /// matches [`TimingPath::delay_ps`] (to within re-association rounding).
    ///
    /// # Panics
    ///
    /// Panics if a gate index is outside `delays` — bounds-check persisted
    /// gate ids before calling.
    pub fn delay_from(&self, delays: &[f64]) -> f64 {
        self.gates.iter().map(|g| delays[g.index()]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_arithmetic() {
        let p = TimingPath { gates: vec![GateId::from_index(0)], delay_ps: 80.0 };
        assert!((p.slack_ps(100.0) - 20.0).abs() < 1e-12);
        assert!(p.slack_ps(50.0) < 0.0);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }
}
