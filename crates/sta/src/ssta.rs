//! First-order statistical static timing analysis (SSTA).
//!
//! The paper positions post-silicon tuning against design-time *statistical
//! optimization* (§1, citing Mani et al.): statistical methods carry the
//! process spread through timing as distributions and sign off on a timing
//! *yield*. This module provides that capability so the two philosophies can
//! be compared quantitatively (see the `ssta_vs_mc` experiment):
//!
//! * [`CanonicalDelay`] — the classic first-order canonical form
//!   `D = μ + a·X_g + b·X_i`, with one globally shared standard normal
//!   `X_g` (die-to-die) and an independent per-node `X_i` (within-die
//!   random);
//! * [`TimingGraph::analyze_statistical`](crate::TimingGraph::analyze_statistical)
//!   — block-based propagation with Clark's moment-matching `max`;
//! * [`CanonicalDelay::yield_at`] — timing yield at a clock period.

use serde::{Deserialize, Serialize};

use crate::TimingGraph;

/// Standard normal probability density.
fn phi(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution (Abramowitz–Stegun 7.1.26
/// via `erf`; absolute error < 1.5e-7).
fn cap_phi(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * (x.abs() / std::f64::consts::SQRT_2));
    let erf = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-(x * x) / 2.0).exp();
    if x >= 0.0 {
        0.5 * (1.0 + erf)
    } else {
        0.5 * (1.0 - erf)
    }
}

/// A Gaussian delay in first-order canonical form:
/// `D = mean + global·X_g + indep·X_i`.
///
/// ```
/// use fbb_sta::ssta::CanonicalDelay;
///
/// let d = CanonicalDelay::new(100.0, 5.0, 3.0);
/// assert!((d.sigma() - (34.0f64).sqrt()).abs() < 1e-12);
/// assert!(d.yield_at(100.0) > 0.49 && d.yield_at(100.0) < 0.51);
/// assert!(d.yield_at(120.0) > 0.99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CanonicalDelay {
    /// Mean delay.
    pub mean: f64,
    /// Sensitivity to the shared global variable (die-to-die).
    pub global: f64,
    /// Independent random sigma (within-die, uncorrelated).
    pub indep: f64,
}

impl CanonicalDelay {
    /// A canonical delay with the given moments.
    pub fn new(mean: f64, global: f64, indep: f64) -> Self {
        CanonicalDelay { mean, global, indep }
    }

    /// A deterministic delay (zero spread).
    pub fn deterministic(mean: f64) -> Self {
        CanonicalDelay { mean, global: 0.0, indep: 0.0 }
    }

    /// The zero delay.
    pub fn zero() -> Self {
        Self::deterministic(0.0)
    }

    /// Total standard deviation.
    pub fn sigma(&self) -> f64 {
        (self.global * self.global + self.indep * self.indep).sqrt()
    }

    /// Sum of two canonical delays: means and global sensitivities add,
    /// independent parts add in quadrature.
    pub fn add(&self, other: &CanonicalDelay) -> CanonicalDelay {
        CanonicalDelay {
            mean: self.mean + other.mean,
            global: self.global + other.global,
            indep: (self.indep * self.indep + other.indep * other.indep).sqrt(),
        }
    }

    /// Statistical maximum via Clark's moment matching, re-expressed in
    /// canonical form with tightness-weighted global sensitivity.
    pub fn max(&self, other: &CanonicalDelay) -> CanonicalDelay {
        let (s1, s2) = (self.sigma(), other.sigma());
        let cov = self.global * other.global; // only X_g is shared
        let theta2 = (s1 * s1 + s2 * s2 - 2.0 * cov).max(0.0);
        let theta = theta2.sqrt();
        if theta < 1e-12 {
            // Perfectly correlated equal-variance case: plain max of means.
            return if self.mean >= other.mean { *self } else { *other };
        }
        let alpha = (self.mean - other.mean) / theta;
        let t = cap_phi(alpha);
        let mean = self.mean * t + other.mean * (1.0 - t) + theta * phi(alpha);
        let raw_second = (self.mean * self.mean + s1 * s1) * t
            + (other.mean * other.mean + s2 * s2) * (1.0 - t)
            + (self.mean + other.mean) * theta * phi(alpha);
        let var = (raw_second - mean * mean).max(0.0);
        // Tightness-weighted reconstruction of the canonical form.
        let global = self.global * t + other.global * (1.0 - t);
        let indep = (var - global * global).max(0.0).sqrt();
        CanonicalDelay { mean, global, indep }
    }

    /// Probability that this delay is at most `clock` (the timing yield).
    pub fn yield_at(&self, clock: f64) -> f64 {
        let s = self.sigma();
        if s < 1e-12 {
            return if self.mean <= clock { 1.0 } else { 0.0 };
        }
        cap_phi((clock - self.mean) / s)
    }

    /// The `q`-quantile of the delay (e.g. `0.997` for a 3σ sign-off).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        // Beasley-Springer-Moro style rational approximation via bisection
        // on the monotone CDF (robust, good to ~1e-9 over a wide bracket).
        let s = self.sigma();
        if s < 1e-12 {
            return self.mean;
        }
        let (mut lo, mut hi) = (-9.0, 9.0);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if cap_phi(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        self.mean + s * 0.5 * (lo + hi)
    }
}

impl TimingGraph<'_> {
    /// Statistical arrival propagation: like
    /// [`TimingGraph::analyze`](crate::TimingGraph::analyze) but over
    /// canonical delays, returning the statistical critical delay (the
    /// distribution of `Dcrit` across the die population).
    ///
    /// # Panics
    ///
    /// Panics if `delays.len() != self.gate_count()`.
    pub fn analyze_statistical(&self, delays: &[CanonicalDelay]) -> CanonicalDelay {
        assert_eq!(delays.len(), self.gate_count(), "one delay per gate required");
        let n = self.gate_count();
        let mut arrival = vec![CanonicalDelay::zero(); n];

        for &id in &self.topo {
            let i = id.index();
            let mut best = CanonicalDelay::zero();
            let mut first = true;
            for &p in &self.comb_fanin[i] {
                best = if first { arrival[p.index()] } else { best.max(&arrival[p.index()]) };
                first = false;
            }
            for &ff in &self.seq_fanin[i] {
                let launch = delays[ff.index()];
                best = if first { launch } else { best.max(&launch) };
                first = false;
            }
            arrival[i] = best.add(&delays[i]);
        }

        let mut dcrit = CanonicalDelay::zero();
        let mut first = true;
        for &id in &self.topo {
            if self.is_endpoint[id.index()] {
                let a = arrival[id.index()];
                dcrit = if first { a } else { dcrit.max(&a) };
                first = false;
            }
        }
        dcrit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbb_netlist::generators::{random_logic, RandomLogicOptions};
    use rand::{Rng as _, SeedableRng as _};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn normal_cdf_reference_points() {
        assert!((cap_phi(0.0) - 0.5).abs() < 1e-7);
        assert!((cap_phi(1.0) - 0.8413).abs() < 1e-4);
        assert!((cap_phi(-1.0) - 0.1587).abs() < 1e-4);
        assert!((cap_phi(3.0) - 0.99865).abs() < 1e-4);
    }

    #[test]
    fn deterministic_ssta_equals_sta() {
        let nl = random_logic(
            "p",
            &RandomLogicOptions {
                target_gates: 150,
                n_inputs: 8,
                seed: 5,
                registered: false,
                locality_window: 16,
            },
        )
        .unwrap();
        let graph = crate::TimingGraph::new(&nl).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let means: Vec<f64> = (0..nl.gate_count()).map(|_| rng.gen_range(5.0..25.0)).collect();
        let sta = graph.analyze(&means).dcrit_ps();
        let canon: Vec<CanonicalDelay> =
            means.iter().map(|&m| CanonicalDelay::deterministic(m)).collect();
        let ssta = graph.analyze_statistical(&canon);
        assert!((ssta.mean - sta).abs() < 1e-6);
        assert!(ssta.sigma() < 1e-9);
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_the_mean() {
        let d = CanonicalDelay::new(100.0, 4.0, 3.0);
        let q10 = d.quantile(0.10);
        let q50 = d.quantile(0.50);
        let q90 = d.quantile(0.90);
        assert!(q10 < q50 && q50 < q90);
        assert!((q50 - 100.0).abs() < 1e-6);
        assert!((d.quantile(0.8413) - (100.0 + d.sigma())).abs() < 0.01);
    }

    #[test]
    fn clark_max_against_monte_carlo_two_variables() {
        // max of two correlated Gaussians, checked against sampling.
        let a = CanonicalDelay::new(100.0, 6.0, 2.0);
        let b = CanonicalDelay::new(96.0, 3.0, 7.0);
        let m = a.max(&b);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let xg: f64 = gauss(&mut rng);
            let va = a.mean + a.global * xg + a.indep * gauss(&mut rng);
            let vb = b.mean + b.global * xg + b.indep * gauss(&mut rng);
            let v = va.max(vb);
            sum += v;
            sum2 += v * v;
        }
        let mc_mean = sum / n as f64;
        let mc_sigma = (sum2 / n as f64 - mc_mean * mc_mean).sqrt();
        assert!((m.mean - mc_mean).abs() < 0.15, "mean {} vs MC {mc_mean}", m.mean);
        assert!((m.sigma() - mc_sigma).abs() < 0.2, "sigma {} vs MC {mc_sigma}", m.sigma());
    }

    #[test]
    fn circuit_ssta_tracks_model_consistent_monte_carlo() {
        let nl = random_logic(
            "p",
            &RandomLogicOptions {
                target_gates: 120,
                n_inputs: 8,
                seed: 11,
                registered: false,
                locality_window: 16,
            },
        )
        .unwrap();
        let graph = crate::TimingGraph::new(&nl).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let canon: Vec<CanonicalDelay> = (0..nl.gate_count())
            .map(|_| {
                let mean = rng.gen_range(8.0..20.0);
                CanonicalDelay::new(mean, 0.04 * mean, 0.03 * mean)
            })
            .collect();
        let ssta = graph.analyze_statistical(&canon);

        // Monte Carlo with the same underlying model.
        let samples = 3000;
        let mut dcrits = Vec::with_capacity(samples);
        for _ in 0..samples {
            let xg = gauss(&mut rng);
            let d: Vec<f64> = canon
                .iter()
                .map(|c| (c.mean + c.global * xg + c.indep * gauss(&mut rng)).max(0.1))
                .collect();
            dcrits.push(graph.analyze(&d).dcrit_ps());
        }
        let mc_mean = dcrits.iter().sum::<f64>() / samples as f64;
        dcrits.sort_by(|a, b| a.partial_cmp(b).unwrap());

        // Clark's approximation with reconvergent correlation: a few percent.
        assert!(
            (ssta.mean - mc_mean).abs() / mc_mean < 0.03,
            "ssta mean {} vs mc {mc_mean}",
            ssta.mean
        );
        // Yield prediction at the MC p90 clock should be near 0.9.
        let p90 = dcrits[(samples * 9) / 10];
        let y = ssta.yield_at(p90);
        assert!((0.75..=0.99).contains(&y), "predicted yield {y} at the MC p90 clock");
    }

    fn gauss(rng: &mut ChaCha8Rng) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}
