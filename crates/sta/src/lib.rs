//! Static timing analysis for gate-level netlists.
//!
//! The paper's pre-processing extracts "the longest timing path through each
//! cell in the design" with a standard STA engine (PrimeTime), prunes the
//! result to a unique path set Π, and uses those paths as the ILP's timing
//! constraints (§4.1, following Ramalingam et al.'s heuristic for avoiding
//! full path enumeration). This crate reimplements that capability:
//!
//! * [`TimingGraph`] — levelized combinational timing graph with DFF
//!   boundaries (Q pins are startpoints with clk→Q delay, D pins endpoints);
//! * [`TimingGraph::analyze`] — arrival/tail propagation for an arbitrary
//!   per-gate delay assignment, yielding `Dcrit` and per-gate slack;
//! * [`TimingAnalysis::longest_path_through`] — the materialized worst path
//!   through one gate;
//! * [`TimingAnalysis::critical_path_set`] — the deduplicated path set Π.
//!
//! Beyond the paper's one-shot flow, the crate provides the performance
//! layer the allocators are built on:
//!
//! * [`IncrementalSta`] — generation-counted arrival/tail caches with
//!   cone-limited re-timing after [`IncrementalSta::invalidate_rows`] /
//!   [`IncrementalSta::set_gate_delay`], bit-identical to a from-scratch
//!   [`TimingGraph::analyze`];
//! * [`par`] — a std-only scoped-thread worker pool ([`par::parallel_map`],
//!   [`par::parallel_gen`]) used for candidate ranking, ILP constraint
//!   generation, and Monte Carlo sampling.
//!
//! # Example
//!
//! ```
//! use fbb_netlist::generators;
//! use fbb_sta::TimingGraph;
//!
//! # fn main() -> Result<(), fbb_netlist::NetlistError> {
//! let nl = generators::ripple_adder("add8", 8, false).expect("valid generator");
//! let graph = TimingGraph::new(&nl)?;
//! let delays: Vec<f64> = nl.gates().iter().map(|_| 10.0).collect();
//! let analysis = graph.analyze(&delays);
//! assert!(analysis.dcrit_ps() > 0.0);
//! let paths = analysis.critical_path_set();
//! assert!(!paths.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod graph;
pub mod par;
mod path;
pub mod ssta;

pub use analysis::{IncrementalSta, RowId, RowMap, TimingAnalysis};
pub use graph::TimingGraph;
pub use path::TimingPath;
