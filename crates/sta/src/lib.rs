//! Static timing analysis for gate-level netlists.
//!
//! The paper's pre-processing extracts "the longest timing path through each
//! cell in the design" with a standard STA engine (PrimeTime), prunes the
//! result to a unique path set Π, and uses those paths as the ILP's timing
//! constraints (§4.1, following Ramalingam et al.'s heuristic for avoiding
//! full path enumeration). This crate reimplements that capability:
//!
//! * [`TimingGraph`] — levelized combinational timing graph with DFF
//!   boundaries (Q pins are startpoints with clk→Q delay, D pins endpoints);
//! * [`TimingGraph::analyze`] — arrival/tail propagation for an arbitrary
//!   per-gate delay assignment, yielding `Dcrit` and per-gate slack;
//! * [`TimingAnalysis::longest_path_through`] — the materialized worst path
//!   through one gate;
//! * [`TimingAnalysis::critical_path_set`] — the deduplicated path set Π.
//!
//! # Example
//!
//! ```
//! use fbb_netlist::generators;
//! use fbb_sta::TimingGraph;
//!
//! # fn main() -> Result<(), fbb_netlist::NetlistError> {
//! let nl = generators::ripple_adder("add8", 8, false).expect("valid generator");
//! let graph = TimingGraph::new(&nl)?;
//! let delays: Vec<f64> = nl.gates().iter().map(|_| 10.0).collect();
//! let analysis = graph.analyze(&delays);
//! assert!(analysis.dcrit_ps() > 0.0);
//! let paths = analysis.critical_path_set();
//! assert!(!paths.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod graph;
mod path;
pub mod ssta;

pub use analysis::TimingAnalysis;
pub use graph::TimingGraph;
pub use path::TimingPath;
