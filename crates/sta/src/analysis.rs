//! Timing analysis results and path extraction.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use fbb_netlist::GateId;

use crate::{TimingGraph, TimingPath};

/// The result of one arrival/tail propagation over a [`TimingGraph`].
#[derive(Debug, Clone)]
pub struct TimingAnalysis<'g, 'nl> {
    pub(crate) graph: &'g TimingGraph<'nl>,
    pub(crate) delays: Vec<f64>,
    /// Arrival time at each gate's output.
    pub(crate) arrival: Vec<f64>,
    /// Critical fanin gate realizing the arrival.
    pub(crate) pred: Vec<Option<GateId>>,
    /// Longest downstream delay including the gate's own delay.
    pub(crate) tail: Vec<f64>,
    /// Critical fanout gate realizing the tail.
    pub(crate) succ: Vec<Option<GateId>>,
    pub(crate) dcrit: f64,
}

impl TimingAnalysis<'_, '_> {
    /// The critical (longest endpoint arrival) delay `Dcrit` in picoseconds.
    pub fn dcrit_ps(&self) -> f64 {
        self.dcrit
    }

    /// Arrival time at the output of `gate`.
    pub fn arrival_ps(&self, gate: GateId) -> f64 {
        self.arrival[gate.index()]
    }

    /// Delay of the longest path passing *through* `gate`.
    pub fn longest_through_ps(&self, gate: GateId) -> f64 {
        // arrival includes the gate delay; tail includes it too.
        self.arrival[gate.index()] - self.delays[gate.index()] + self.tail[gate.index()]
    }

    /// Slack of the worst path through `gate` against `Dcrit`.
    pub fn slack_through_ps(&self, gate: GateId) -> f64 {
        self.dcrit - self.longest_through_ps(gate)
    }

    /// Materializes the longest path through `gate`.
    pub fn longest_path_through(&self, gate: GateId) -> TimingPath {
        let mut prefix = Vec::new();
        let mut cursor = Some(gate);
        while let Some(g) = cursor {
            prefix.push(g);
            cursor = self.pred[g.index()];
        }
        prefix.reverse();
        let mut cursor = self.succ[gate.index()];
        while let Some(g) = cursor {
            prefix.push(g);
            cursor = self.succ[g.index()];
        }
        TimingPath { gates: prefix, delay_ps: self.longest_through_ps(gate) }
    }

    /// The paper's pruned critical path set Π: the longest path through each
    /// cell, deduplicated (many cells share their worst path).
    ///
    /// Sequential cells contribute through the launch paths of their Q pins,
    /// which already include them as startpoints, so only combinational
    /// cells seed extraction.
    pub fn critical_path_set(&self) -> Vec<TimingPath> {
        let mut seen: HashSet<u64> = HashSet::new();
        let mut paths = Vec::new();
        for &id in &self.graph.topo {
            let path = self.longest_path_through(id);
            let mut hasher = DefaultHasher::new();
            path.gates.hash(&mut hasher);
            if seen.insert(hasher.finish()) {
                paths.push(path);
            }
        }
        paths
    }

    /// Like [`TimingAnalysis::critical_path_set`], but keeps only paths whose
    /// delay degraded by the slowdown coefficient `beta` would violate
    /// `Dcrit` — exactly the constraint set (`No.Constr`) of the paper:
    /// `pd · (1 + β) > Dcrit`.
    pub fn constrained_path_set(&self, beta: f64) -> Vec<TimingPath> {
        self.critical_path_set()
            .into_iter()
            .filter(|p| p.delay_ps * (1.0 + beta) > self.dcrit + 1e-9)
            .collect()
    }

    /// The delay assignment this analysis was computed for.
    pub fn delays(&self) -> &[f64] {
        &self.delays
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbb_device::{CellKind, DriveStrength};
    use fbb_netlist::{generators, Netlist, NetlistBuilder};
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    /// Brute-force longest path through each gate by DFS enumeration.
    fn brute_force_through(nl: &Netlist, delays: &[f64]) -> Vec<f64> {
        let graph = TimingGraph::new(nl).unwrap();
        let n = nl.gate_count();
        // Longest arrival ending at gate (inclusive).
        let mut arr = vec![0.0f64; n];
        for &id in &graph.topo {
            let i = id.index();
            let mut best = 0.0f64;
            for &p in &graph.comb_fanin[i] {
                best = best.max(arr[p.index()]);
            }
            for &ff in &graph.seq_fanin[i] {
                best = best.max(delays[ff.index()]);
            }
            arr[i] = best + delays[i];
        }
        let mut tail = vec![0.0f64; n];
        for &id in graph.topo.iter().rev() {
            let i = id.index();
            let mut best = 0.0f64;
            for &s in &graph.comb_fanout[i] {
                best = best.max(tail[s.index()]);
            }
            tail[i] = best + delays[i];
        }
        (0..n).map(|i| arr[i] - delays[i] + tail[i]).collect()
    }

    #[test]
    fn diamond_takes_slower_branch() {
        let mut b = NetlistBuilder::new("diamond");
        let a = b.input("a");
        let top = b.gate(CellKind::Inv, DriveStrength::X1, &[a]).unwrap();
        let bot1 = b.gate(CellKind::Inv, DriveStrength::X1, &[a]).unwrap();
        let bot2 = b.gate(CellKind::Inv, DriveStrength::X1, &[bot1]).unwrap();
        let join = b.gate(CellKind::And2, DriveStrength::X1, &[top, bot2]).unwrap();
        b.output(join, "y");
        let nl = b.finish().unwrap();
        let g = TimingGraph::new(&nl).unwrap();
        let a = g.analyze(&[10.0, 10.0, 10.0, 10.0]);
        assert!((a.dcrit_ps() - 30.0).abs() < 1e-9);
        // The path through the top gate is 10 + 10 = 20: slack 10.
        assert!((a.slack_through_ps(GateId::from_index(0)) - 10.0).abs() < 1e-9);
        // Bottom branch is critical: slack 0.
        assert!(a.slack_through_ps(GateId::from_index(1)).abs() < 1e-9);
        let p = a.longest_path_through(GateId::from_index(1));
        assert_eq!(p.gates.len(), 3);
        assert!((p.delay_ps - 30.0).abs() < 1e-9);
    }

    #[test]
    fn longest_through_matches_brute_force_on_random_logic() {
        let nl = generators::random_logic(
            "r",
            &generators::RandomLogicOptions {
                target_gates: 250,
                n_inputs: 12,
                seed: 99,
                registered: true,
                locality_window: 24,
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let delays: Vec<f64> = (0..nl.gate_count()).map(|_| rng.gen_range(5.0..30.0)).collect();
        let g = TimingGraph::new(&nl).unwrap();
        let a = g.analyze(&delays);
        let brute = brute_force_through(&nl, &delays);
        for (i, &expect) in brute.iter().enumerate() {
            if nl.gates()[i].cell.kind.is_sequential() {
                continue; // launch handling differs for flops themselves
            }
            let got = a.longest_through_ps(GateId::from_index(i));
            assert!((got - expect).abs() < 1e-6, "gate {i}: {got} vs {expect}");
        }
    }

    #[test]
    fn materialized_path_delay_is_consistent() {
        let nl = generators::alu("alu8", 8).unwrap();
        let delays: Vec<f64> = nl.gates().iter().map(|g| 5.0 + g.cell.kind.index() as f64).collect();
        let g = TimingGraph::new(&nl).unwrap();
        let a = g.analyze(&delays);
        for path in a.critical_path_set() {
            let sum: f64 = path.gates.iter().map(|&g| delays[g.index()]).sum();
            assert!(
                (sum - path.delay_ps).abs() < 1e-6,
                "path delay {} != gate sum {sum}",
                path.delay_ps
            );
        }
    }

    #[test]
    fn path_set_is_deduplicated_and_covers_critical_path() {
        let nl = generators::ripple_adder("a16", 16, false).unwrap();
        let delays: Vec<f64> = vec![10.0; nl.gate_count()];
        let g = TimingGraph::new(&nl).unwrap();
        let a = g.analyze(&delays);
        let paths = a.critical_path_set();
        // Far fewer unique paths than gates.
        assert!(paths.len() < nl.gate_count());
        // The global critical path is in the set.
        let max = paths.iter().map(|p| p.delay_ps).fold(0.0f64, f64::max);
        assert!((max - a.dcrit_ps()).abs() < 1e-9);
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            assert!(seen.insert(p.gates.clone()), "duplicate path in Π");
        }
    }

    #[test]
    fn constrained_set_grows_with_beta() {
        let nl = generators::alu("alu16", 16).unwrap();
        let delays: Vec<f64> = nl.gates().iter().map(|g| 5.0 + g.cell.kind.index() as f64).collect();
        let g = TimingGraph::new(&nl).unwrap();
        let a = g.analyze(&delays);
        let m5 = a.constrained_path_set(0.05).len();
        let m10 = a.constrained_path_set(0.10).len();
        assert!(m10 >= m5, "{m10} < {m5}");
        assert!(m5 >= 1, "critical path itself always violates under slowdown");
        // Every constrained path indeed violates when degraded.
        for p in a.constrained_path_set(0.05) {
            assert!(p.delay_ps * 1.05 > a.dcrit_ps());
        }
    }

    #[test]
    fn zero_beta_has_no_constraints() {
        let nl = generators::ripple_adder("a8", 8, false).unwrap();
        let delays: Vec<f64> = vec![10.0; nl.gate_count()];
        let g = TimingGraph::new(&nl).unwrap();
        let a = g.analyze(&delays);
        assert!(a.constrained_path_set(0.0).is_empty());
    }

    #[test]
    fn launch_path_includes_the_flop() {
        let mut b = NetlistBuilder::new("seq");
        let a = b.input("a");
        let q = b.dff(DriveStrength::X1, a).unwrap();
        let w = b.gate(CellKind::Inv, DriveStrength::X1, &[q]).unwrap();
        b.output(w, "y");
        let nl = b.finish().unwrap();
        let g = TimingGraph::new(&nl).unwrap();
        let an = g.analyze(&[30.0, 10.0]);
        let p = an.longest_path_through(GateId::from_index(1));
        assert_eq!(p.gates, vec![GateId::from_index(0), GateId::from_index(1)]);
        assert!((p.delay_ps - 40.0).abs() < 1e-9);
    }
}
