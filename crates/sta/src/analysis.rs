//! Timing analysis results, path extraction, and incremental re-timing.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use fbb_netlist::GateId;

use crate::{TimingGraph, TimingPath};

/// Identifier of one bias row/cluster inside a [`RowMap`].
///
/// Mirrors `fbb_placement::RowId::index()`: callers build a [`RowMap`] from
/// whatever physical grouping they use (standard-cell rows, blocks, single
/// gates) and address it by plain index.
pub type RowId = usize;

/// Gate→row grouping used by [`IncrementalSta::invalidate_rows`].
///
/// The STA crate is placement-agnostic; a `RowMap` is just the inverse index
/// of any per-gate grouping (one entry per gate, row ids densely numbered
/// from 0).
#[derive(Debug, Clone)]
pub struct RowMap {
    gates_of: Vec<Vec<GateId>>,
}

impl RowMap {
    /// Builds the map from a per-gate row assignment (`row_of[gate_index]`).
    ///
    /// # Panics
    ///
    /// Panics if `row_of` is empty references no rows; rows are sized by the
    /// maximum id present.
    pub fn new(row_of: &[usize]) -> Self {
        let n_rows = row_of.iter().copied().max().map_or(0, |m| m + 1);
        let mut gates_of = vec![Vec::new(); n_rows];
        for (gate, &row) in row_of.iter().enumerate() {
            gates_of[row].push(GateId::from_index(gate));
        }
        RowMap { gates_of }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.gates_of.len()
    }

    /// The gates grouped under `row`.
    pub fn gates(&self, row: RowId) -> &[GateId] {
        &self.gates_of[row]
    }
}

/// The result of one arrival/tail propagation over a [`TimingGraph`].
#[derive(Debug, Clone)]
pub struct TimingAnalysis<'g, 'nl> {
    pub(crate) graph: &'g TimingGraph<'nl>,
    pub(crate) delays: Vec<f64>,
    /// Arrival time at each gate's output.
    pub(crate) arrival: Vec<f64>,
    /// Critical fanin gate realizing the arrival.
    pub(crate) pred: Vec<Option<GateId>>,
    /// Longest downstream delay including the gate's own delay.
    pub(crate) tail: Vec<f64>,
    /// Critical fanout gate realizing the tail.
    pub(crate) succ: Vec<Option<GateId>>,
    pub(crate) dcrit: f64,
}

impl TimingAnalysis<'_, '_> {
    /// The critical (longest endpoint arrival) delay `Dcrit` in picoseconds.
    pub fn dcrit_ps(&self) -> f64 {
        self.dcrit
    }

    /// Arrival time at the output of `gate`.
    pub fn arrival_ps(&self, gate: GateId) -> f64 {
        self.arrival[gate.index()]
    }

    /// Tail of `gate`: its own delay plus the longest downstream delay (for
    /// a flip-flop, the clk→Q launch into its worst combinational sink).
    pub fn tail_ps(&self, gate: GateId) -> f64 {
        self.tail[gate.index()]
    }

    /// Delay of the longest path passing *through* `gate`.
    pub fn longest_through_ps(&self, gate: GateId) -> f64 {
        // arrival includes the gate delay; tail includes it too.
        self.arrival[gate.index()] - self.delays[gate.index()] + self.tail[gate.index()]
    }

    /// Slack of the worst path through `gate` against `Dcrit`.
    pub fn slack_through_ps(&self, gate: GateId) -> f64 {
        self.dcrit - self.longest_through_ps(gate)
    }

    /// Materializes the longest path through `gate`.
    pub fn longest_path_through(&self, gate: GateId) -> TimingPath {
        let mut prefix = Vec::new();
        let mut cursor = Some(gate);
        while let Some(g) = cursor {
            prefix.push(g);
            cursor = self.pred[g.index()];
        }
        prefix.reverse();
        let mut cursor = self.succ[gate.index()];
        while let Some(g) = cursor {
            prefix.push(g);
            cursor = self.succ[g.index()];
        }
        TimingPath { gates: prefix, delay_ps: self.longest_through_ps(gate) }
    }

    /// The paper's pruned critical path set Π: the longest path through each
    /// cell, deduplicated (many cells share their worst path).
    ///
    /// Sequential cells contribute through the launch paths of their Q pins,
    /// which already include them as startpoints, so only combinational
    /// cells seed extraction.
    pub fn critical_path_set(&self) -> Vec<TimingPath> {
        let mut seen: HashSet<u64> = HashSet::new();
        let mut paths = Vec::new();
        for &id in &self.graph.topo {
            let path = self.longest_path_through(id);
            let mut hasher = DefaultHasher::new();
            path.gates.hash(&mut hasher);
            if seen.insert(hasher.finish()) {
                paths.push(path);
            }
        }
        paths
    }

    /// Like [`TimingAnalysis::critical_path_set`], but keeps only paths whose
    /// delay degraded by the slowdown coefficient `beta` would violate
    /// `Dcrit` — exactly the constraint set (`No.Constr`) of the paper:
    /// `pd · (1 + β) > Dcrit`.
    pub fn constrained_path_set(&self, beta: f64) -> Vec<TimingPath> {
        self.critical_path_set()
            .into_iter()
            .filter(|p| p.delay_ps * (1.0 + beta) > self.dcrit + 1e-9)
            .collect()
    }

    /// The delay assignment this analysis was computed for.
    pub fn delays(&self) -> &[f64] {
        &self.delays
    }
}

/// Incremental static timing engine over one [`TimingGraph`].
///
/// A full [`TimingGraph::analyze`] visits every gate twice. During bias
/// allocation only a handful of rows change between candidate evaluations,
/// so the affected fan-out/fan-in cones are tiny compared to the design.
/// `IncrementalSta` keeps the arrival/required ("tail") caches of the last
/// evaluation and, on [`retime`](IncrementalSta::retime), re-propagates only
/// from the invalidated gates outward, stopping as soon as cached values are
/// reproduced bit-for-bit.
///
/// # Exact equivalence
///
/// The per-node recompute step is the same code as the full pass, nodes are
/// processed in the same topological order (a rank-range sweep over dirty
/// marks), and propagation stops only when a recomputed value is **bit-identical**
/// (`f64::to_bits`) to the cache. By induction over the topological order the
/// engine therefore yields exactly the arrival/tail/`Dcrit` values a
/// from-scratch [`TimingGraph::analyze`] would produce — not merely close
/// ones. A proptest in `crates/sta/tests/` asserts this across randomized
/// bias-flip sequences.
///
/// # Generations
///
/// Every successful [`retime`](IncrementalSta::retime) bumps a generation
/// counter; [`gate_generation`](IncrementalSta::gate_generation) tells which
/// generation last recomputed a gate, letting callers observe how small the
/// recomputed cone was (also see
/// [`last_retimed_nodes`](IncrementalSta::last_retimed_nodes)).
///
/// # Example
///
/// ```
/// use fbb_netlist::generators;
/// use fbb_sta::{IncrementalSta, TimingGraph};
///
/// let nl = generators::ripple_adder("add8", 8, false).expect("valid generator");
/// let graph = TimingGraph::new(&nl).expect("acyclic");
/// let mut delays: Vec<f64> = vec![10.0; nl.gate_count()];
/// let mut inc = IncrementalSta::new(&graph, &delays);
///
/// // Speed up one gate, retime incrementally …
/// inc.set_gate_delay(fbb_netlist::GateId::from_index(0), 7.5);
/// let dcrit = inc.retime();
///
/// // … and get bit-identical results to a from-scratch analyze.
/// delays[0] = 7.5;
/// assert_eq!(dcrit.to_bits(), graph.analyze(&delays).dcrit_ps().to_bits());
/// assert!(inc.last_retimed_nodes() <= nl.gate_count());
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalSta<'g, 'nl> {
    graph: &'g TimingGraph<'nl>,
    rows: Option<RowMap>,
    delays: Vec<f64>,
    arrival: Vec<f64>,
    pred: Vec<Option<GateId>>,
    tail: Vec<f64>,
    succ: Vec<Option<GateId>>,
    dcrit: f64,
    /// Rank of each gate in `graph.topo` (`usize::MAX` for flip-flops, which
    /// the topological order excludes).
    topo_rank: Vec<usize>,
    /// Endpoint gate indices in topological order — the same iteration order
    /// the full pass uses for its `Dcrit` fold, preserving bit-identity.
    endpoints: Vec<usize>,
    generation: u64,
    node_generation: Vec<u64>,
    pending: Vec<usize>,
    pending_flag: Vec<bool>,
    // Heap-dedup markers, valid when equal to the current generation.
    fwd_seen: Vec<u64>,
    bwd_seen: Vec<u64>,
    dff_seen: Vec<u64>,
    last_retimed: usize,
}

impl<'g, 'nl> IncrementalSta<'g, 'nl> {
    /// Builds the engine, paying one full [`TimingGraph::analyze`] to seed
    /// the caches.
    ///
    /// # Panics
    ///
    /// Panics if `delays.len() != graph.gate_count()`.
    pub fn new(graph: &'g TimingGraph<'nl>, delays: &[f64]) -> Self {
        let analysis = graph.analyze(delays);
        let n = graph.gate_count();
        let mut topo_rank = vec![usize::MAX; n];
        for (rank, &id) in graph.topo.iter().enumerate() {
            topo_rank[id.index()] = rank;
        }
        let endpoints = graph
            .topo
            .iter()
            .map(|id| id.index())
            .filter(|&i| graph.is_endpoint[i])
            .collect();
        IncrementalSta {
            graph,
            rows: None,
            delays: analysis.delays,
            arrival: analysis.arrival,
            pred: analysis.pred,
            tail: analysis.tail,
            succ: analysis.succ,
            dcrit: analysis.dcrit,
            topo_rank,
            endpoints,
            generation: 0,
            node_generation: vec![0; n],
            pending: Vec::new(),
            pending_flag: vec![false; n],
            fwd_seen: vec![0; n],
            bwd_seen: vec![0; n],
            dff_seen: vec![0; n],
            last_retimed: 0,
        }
    }

    /// Like [`IncrementalSta::new`], but registers a gate→row grouping so
    /// whole rows can be invalidated by id via
    /// [`invalidate_rows`](IncrementalSta::invalidate_rows).
    pub fn with_rows(graph: &'g TimingGraph<'nl>, delays: &[f64], rows: RowMap) -> Self {
        let mut engine = Self::new(graph, delays);
        engine.rows = Some(rows);
        engine
    }

    /// The timing graph this engine analyzes.
    pub fn graph(&self) -> &'g TimingGraph<'nl> {
        self.graph
    }

    /// The row grouping registered via [`IncrementalSta::with_rows`], if any.
    pub fn rows(&self) -> Option<&RowMap> {
        self.rows.as_ref()
    }

    /// Critical delay of the last [`retime`](IncrementalSta::retime) (or the
    /// seeding full analysis), in picoseconds.
    ///
    /// Stale if invalidations are pending — call `retime` first.
    pub fn dcrit_ps(&self) -> f64 {
        self.dcrit
    }

    /// Cached arrival time at the output of `gate`.
    pub fn arrival_ps(&self, gate: GateId) -> f64 {
        self.arrival[gate.index()]
    }

    /// Cached tail (own delay + worst downstream delay) of `gate`.
    pub fn tail_ps(&self, gate: GateId) -> f64 {
        self.tail[gate.index()]
    }

    /// The current per-gate delay assignment.
    pub fn delays(&self) -> &[f64] {
        &self.delays
    }

    /// Current cache generation. Bumped once per effective
    /// [`retime`](IncrementalSta::retime).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Generation that last recomputed `gate` (0 = untouched since seeding).
    pub fn gate_generation(&self, gate: GateId) -> u64 {
        self.node_generation[gate.index()]
    }

    /// Number of node recomputations (forward + backward + DFF-tail) the
    /// last [`retime`](IncrementalSta::retime) performed. A full pass costs
    /// roughly `2 × gate_count`; this is the incremental engine's speedup
    /// denominator.
    pub fn last_retimed_nodes(&self) -> usize {
        self.last_retimed
    }

    /// True if invalidations are queued and the caches are stale.
    pub fn is_dirty(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Sets the delay of one gate (picoseconds; clk→Q for flip-flops) and
    /// queues its cone for re-timing. Bit-equal writes are ignored.
    pub fn set_gate_delay(&mut self, gate: GateId, delay_ps: f64) {
        let i = gate.index();
        if self.delays[i].to_bits() == delay_ps.to_bits() {
            return;
        }
        self.delays[i] = delay_ps;
        self.mark_pending(i);
    }

    /// Direct mutable access to the delay vector for bulk updates.
    ///
    /// The engine cannot observe writes made through this slice: follow up
    /// with [`invalidate_gates`](IncrementalSta::invalidate_gates) or
    /// [`invalidate_rows`](IncrementalSta::invalidate_rows) covering every
    /// touched gate, or the next [`retime`](IncrementalSta::retime) will
    /// return stale results.
    pub fn delays_mut(&mut self) -> &mut [f64] {
        &mut self.delays
    }

    /// Queues the cones of the given gates for re-timing.
    pub fn invalidate_gates(&mut self, gates: &[GateId]) {
        for &g in gates {
            self.mark_pending(g.index());
        }
    }

    /// Queues the cones of every gate in the given rows for re-timing.
    ///
    /// This is the natural API for bias allocation: changing a row's bias
    /// voltage changes the delay of exactly its member gates.
    ///
    /// # Panics
    ///
    /// Panics if the engine was built without a [`RowMap`]
    /// (use [`IncrementalSta::with_rows`]).
    pub fn invalidate_rows(&mut self, rows: &[RowId]) {
        let map = self
            .rows
            .take()
            .expect("invalidate_rows requires a RowMap; construct with IncrementalSta::with_rows");
        for &row in rows {
            for &g in map.gates(row) {
                self.mark_pending(g.index());
            }
        }
        self.rows = Some(map);
    }

    fn mark_pending(&mut self, i: usize) {
        if !self.pending_flag[i] {
            self.pending_flag[i] = true;
            self.pending.push(i);
        }
    }

    /// Re-propagates arrival and tail times from the invalidated gates
    /// outward and returns the updated `Dcrit` (picoseconds).
    ///
    /// No-op (returns the cached `Dcrit`) when nothing is invalidated.
    pub fn retime(&mut self) -> f64 {
        if self.pending.is_empty() {
            return self.dcrit;
        }
        self.generation += 1;
        let gen = self.generation;
        let graph = self.graph;
        let nl = graph.netlist;
        // Dirty nodes are marked by generation and visited by scanning the
        // affected rank range of the topological order — forward pushes only
        // ever mark higher ranks and backward only lower, so a single sweep
        // per direction settles every node after all its re-timed inputs,
        // with O(1) overhead per scanned rank and no worklist allocations.
        let mut dirty_dffs: Vec<usize> = Vec::new();
        let mut retimed = 0usize;
        let (mut fwd_lo, mut fwd_hi) = (usize::MAX, 0usize);
        let (mut bwd_lo, mut bwd_hi) = (usize::MAX, 0usize);

        for k in 0..self.pending.len() {
            let i = self.pending[k];
            let id = GateId::from_index(i);
            if nl.gate(id).cell.kind.is_sequential() {
                // A flip-flop's clk→Q delay launches into its combinational
                // sinks (their arrival reads `delays[ff]`), and its own tail
                // includes the delay directly.
                let q = nl.gate(id).output;
                for &s in &nl.net(q).sinks {
                    let si = s.index();
                    if !nl.gate(s).cell.kind.is_sequential() && self.fwd_seen[si] != gen {
                        self.fwd_seen[si] = gen;
                        fwd_lo = fwd_lo.min(self.topo_rank[si]);
                        fwd_hi = fwd_hi.max(self.topo_rank[si]);
                    }
                }
                if self.dff_seen[i] != gen {
                    self.dff_seen[i] = gen;
                    dirty_dffs.push(i);
                }
            } else {
                let rank = self.topo_rank[i];
                if self.fwd_seen[i] != gen {
                    self.fwd_seen[i] = gen;
                    fwd_lo = fwd_lo.min(rank);
                    fwd_hi = fwd_hi.max(rank);
                }
                if self.bwd_seen[i] != gen {
                    self.bwd_seen[i] = gen;
                    bwd_lo = bwd_lo.min(rank);
                    bwd_hi = bwd_hi.max(rank);
                }
            }
        }

        // Forward cone: recompute arrivals; propagate only past gates whose
        // arrival actually changed (bitwise). `fwd_hi` grows as the cone
        // extends downstream.
        let mut ranks_scanned = 0usize;
        let mut rank = fwd_lo;
        while rank <= fwd_hi {
            let i = graph.topo[rank].index();
            rank += 1;
            ranks_scanned += 1;
            if self.fwd_seen[i] != gen {
                continue;
            }
            let mut best = 0.0f64;
            let mut best_pred = None;
            for &p in &graph.comb_fanin[i] {
                if self.arrival[p.index()] > best {
                    best = self.arrival[p.index()];
                    best_pred = Some(p);
                }
            }
            for &ff in &graph.seq_fanin[i] {
                if self.delays[ff.index()] > best {
                    best = self.delays[ff.index()];
                    best_pred = Some(ff);
                }
            }
            let new_arrival = best + self.delays[i];
            let arrival_changed = new_arrival.to_bits() != self.arrival[i].to_bits();
            self.arrival[i] = new_arrival;
            self.pred[i] = best_pred;
            self.node_generation[i] = gen;
            retimed += 1;
            if arrival_changed {
                for &s in &graph.comb_fanout[i] {
                    let si = s.index();
                    if self.fwd_seen[si] != gen {
                        self.fwd_seen[si] = gen;
                        fwd_hi = fwd_hi.max(self.topo_rank[si]);
                    }
                }
            }
        }

        // Backward cone, symmetric over tails; `bwd_lo` shrinks upstream.
        if bwd_lo != usize::MAX {
            let mut rank = bwd_hi as isize;
            while rank >= bwd_lo as isize {
                let i = graph.topo[rank as usize].index();
                rank -= 1;
                ranks_scanned += 1;
                if self.bwd_seen[i] != gen {
                    continue;
                }
                let mut best = 0.0f64;
                let mut best_succ = None;
                for &s in &graph.comb_fanout[i] {
                    if self.tail[s.index()] > best {
                        best = self.tail[s.index()];
                        best_succ = Some(s);
                    }
                }
                let new_tail = best + self.delays[i];
                let tail_changed = new_tail.to_bits() != self.tail[i].to_bits();
                self.tail[i] = new_tail;
                self.succ[i] = best_succ;
                self.node_generation[i] = gen;
                retimed += 1;
                if tail_changed {
                    for &p in &graph.comb_fanin[i] {
                        let pi = p.index();
                        if self.bwd_seen[pi] != gen {
                            self.bwd_seen[pi] = gen;
                            bwd_lo = bwd_lo.min(self.topo_rank[pi]);
                        }
                    }
                    // A flip-flop's tail reads its combinational sinks' tails.
                    for &ff in &graph.seq_fanin[i] {
                        let fi = ff.index();
                        if self.dff_seen[fi] != gen {
                            self.dff_seen[fi] = gen;
                            dirty_dffs.push(fi);
                        }
                    }
                }
            }
        }

        // Flip-flop tails: clk→Q launches into the flop's comb sinks.
        for &fi in &dirty_dffs {
            let q = nl.gate(GateId::from_index(fi)).output;
            let mut best = 0.0f64;
            let mut best_succ = None;
            for &s in &nl.net(q).sinks {
                if !nl.gate(s).cell.kind.is_sequential() && self.tail[s.index()] > best {
                    best = self.tail[s.index()];
                    best_succ = Some(s);
                }
            }
            self.tail[fi] = best + self.delays[fi];
            self.succ[fi] = best_succ;
            self.node_generation[fi] = gen;
            retimed += 1;
        }

        // Same fold, same order, as the full pass.
        self.dcrit = self
            .endpoints
            .iter()
            .map(|&i| self.arrival[i])
            .fold(0.0f64, f64::max);

        for i in self.pending.drain(..) {
            self.pending_flag[i] = false;
        }
        self.last_retimed = retimed;
        if fbb_telemetry::is_enabled() {
            // retime() runs on the coordinating thread, so float cone-size
            // observations land in a deterministic order.
            fbb_telemetry::counter("sta_incremental_retimes", 1);
            fbb_telemetry::counter("sta_retimed_nodes_total", retimed as u64);
            fbb_telemetry::counter("sta_retime_ranks_scanned", ranks_scanned as u64);
            fbb_telemetry::record("sta_retime_cone_nodes", retimed as f64);
        }
        self.dcrit
    }

    /// Snapshots the caches into a [`TimingAnalysis`] (e.g. for path
    /// extraction). Retimes first if invalidations are pending.
    pub fn as_analysis(&mut self) -> TimingAnalysis<'g, 'nl> {
        self.retime();
        TimingAnalysis {
            graph: self.graph,
            delays: self.delays.clone(),
            arrival: self.arrival.clone(),
            pred: self.pred.clone(),
            tail: self.tail.clone(),
            succ: self.succ.clone(),
            dcrit: self.dcrit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbb_device::{CellKind, DriveStrength};
    use fbb_netlist::{generators, Netlist, NetlistBuilder};
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    /// Brute-force longest path through each gate by DFS enumeration.
    fn brute_force_through(nl: &Netlist, delays: &[f64]) -> Vec<f64> {
        let graph = TimingGraph::new(nl).unwrap();
        let n = nl.gate_count();
        // Longest arrival ending at gate (inclusive).
        let mut arr = vec![0.0f64; n];
        for &id in &graph.topo {
            let i = id.index();
            let mut best = 0.0f64;
            for &p in &graph.comb_fanin[i] {
                best = best.max(arr[p.index()]);
            }
            for &ff in &graph.seq_fanin[i] {
                best = best.max(delays[ff.index()]);
            }
            arr[i] = best + delays[i];
        }
        let mut tail = vec![0.0f64; n];
        for &id in graph.topo.iter().rev() {
            let i = id.index();
            let mut best = 0.0f64;
            for &s in &graph.comb_fanout[i] {
                best = best.max(tail[s.index()]);
            }
            tail[i] = best + delays[i];
        }
        (0..n).map(|i| arr[i] - delays[i] + tail[i]).collect()
    }

    #[test]
    fn diamond_takes_slower_branch() {
        let mut b = NetlistBuilder::new("diamond");
        let a = b.input("a");
        let top = b.gate(CellKind::Inv, DriveStrength::X1, &[a]).unwrap();
        let bot1 = b.gate(CellKind::Inv, DriveStrength::X1, &[a]).unwrap();
        let bot2 = b.gate(CellKind::Inv, DriveStrength::X1, &[bot1]).unwrap();
        let join = b.gate(CellKind::And2, DriveStrength::X1, &[top, bot2]).unwrap();
        b.output(join, "y");
        let nl = b.finish().unwrap();
        let g = TimingGraph::new(&nl).unwrap();
        let a = g.analyze(&[10.0, 10.0, 10.0, 10.0]);
        assert!((a.dcrit_ps() - 30.0).abs() < 1e-9);
        // The path through the top gate is 10 + 10 = 20: slack 10.
        assert!((a.slack_through_ps(GateId::from_index(0)) - 10.0).abs() < 1e-9);
        // Bottom branch is critical: slack 0.
        assert!(a.slack_through_ps(GateId::from_index(1)).abs() < 1e-9);
        let p = a.longest_path_through(GateId::from_index(1));
        assert_eq!(p.gates.len(), 3);
        assert!((p.delay_ps - 30.0).abs() < 1e-9);
    }

    #[test]
    fn longest_through_matches_brute_force_on_random_logic() {
        let nl = generators::random_logic(
            "r",
            &generators::RandomLogicOptions {
                target_gates: 250,
                n_inputs: 12,
                seed: 99,
                registered: true,
                locality_window: 24,
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let delays: Vec<f64> = (0..nl.gate_count()).map(|_| rng.gen_range(5.0..30.0)).collect();
        let g = TimingGraph::new(&nl).unwrap();
        let a = g.analyze(&delays);
        let brute = brute_force_through(&nl, &delays);
        for (i, &expect) in brute.iter().enumerate() {
            if nl.gates()[i].cell.kind.is_sequential() {
                continue; // launch handling differs for flops themselves
            }
            let got = a.longest_through_ps(GateId::from_index(i));
            assert!((got - expect).abs() < 1e-6, "gate {i}: {got} vs {expect}");
        }
    }

    #[test]
    fn materialized_path_delay_is_consistent() {
        let nl = generators::alu("alu8", 8).unwrap();
        let delays: Vec<f64> = nl.gates().iter().map(|g| 5.0 + g.cell.kind.index() as f64).collect();
        let g = TimingGraph::new(&nl).unwrap();
        let a = g.analyze(&delays);
        for path in a.critical_path_set() {
            let sum: f64 = path.gates.iter().map(|&g| delays[g.index()]).sum();
            assert!(
                (sum - path.delay_ps).abs() < 1e-6,
                "path delay {} != gate sum {sum}",
                path.delay_ps
            );
        }
    }

    #[test]
    fn path_set_is_deduplicated_and_covers_critical_path() {
        let nl = generators::ripple_adder("a16", 16, false).unwrap();
        let delays: Vec<f64> = vec![10.0; nl.gate_count()];
        let g = TimingGraph::new(&nl).unwrap();
        let a = g.analyze(&delays);
        let paths = a.critical_path_set();
        // Far fewer unique paths than gates.
        assert!(paths.len() < nl.gate_count());
        // The global critical path is in the set.
        let max = paths.iter().map(|p| p.delay_ps).fold(0.0f64, f64::max);
        assert!((max - a.dcrit_ps()).abs() < 1e-9);
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            assert!(seen.insert(p.gates.clone()), "duplicate path in Π");
        }
    }

    #[test]
    fn constrained_set_grows_with_beta() {
        let nl = generators::alu("alu16", 16).unwrap();
        let delays: Vec<f64> = nl.gates().iter().map(|g| 5.0 + g.cell.kind.index() as f64).collect();
        let g = TimingGraph::new(&nl).unwrap();
        let a = g.analyze(&delays);
        let m5 = a.constrained_path_set(0.05).len();
        let m10 = a.constrained_path_set(0.10).len();
        assert!(m10 >= m5, "{m10} < {m5}");
        assert!(m5 >= 1, "critical path itself always violates under slowdown");
        // Every constrained path indeed violates when degraded.
        for p in a.constrained_path_set(0.05) {
            assert!(p.delay_ps * 1.05 > a.dcrit_ps());
        }
    }

    #[test]
    fn zero_beta_has_no_constraints() {
        let nl = generators::ripple_adder("a8", 8, false).unwrap();
        let delays: Vec<f64> = vec![10.0; nl.gate_count()];
        let g = TimingGraph::new(&nl).unwrap();
        let a = g.analyze(&delays);
        assert!(a.constrained_path_set(0.0).is_empty());
    }

    fn assert_bit_identical(inc: &mut IncrementalSta, graph: &TimingGraph, delays: &[f64]) {
        let dcrit = inc.retime();
        let full = graph.analyze(delays);
        assert_eq!(dcrit.to_bits(), full.dcrit_ps().to_bits(), "dcrit differs");
        for i in 0..delays.len() {
            let id = GateId::from_index(i);
            assert_eq!(
                inc.arrival_ps(id).to_bits(),
                full.arrival[i].to_bits(),
                "arrival differs at gate {i}"
            );
            assert_eq!(
                inc.tail_ps(id).to_bits(),
                full.tail[i].to_bits(),
                "tail differs at gate {i}"
            );
        }
    }

    #[test]
    fn incremental_matches_full_on_random_logic() {
        let nl = generators::random_logic(
            "inc",
            &generators::RandomLogicOptions {
                target_gates: 300,
                n_inputs: 10,
                seed: 5,
                registered: true,
                locality_window: 20,
            },
        )
        .unwrap();
        let graph = TimingGraph::new(&nl).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut delays: Vec<f64> =
            (0..nl.gate_count()).map(|_| rng.gen_range(5.0..30.0)).collect();
        let mut inc = IncrementalSta::new(&graph, &delays);
        for _ in 0..40 {
            let g = rng.gen_range(0..nl.gate_count());
            let d = rng.gen_range(5.0..30.0);
            delays[g] = d;
            inc.set_gate_delay(GateId::from_index(g), d);
            assert_bit_identical(&mut inc, &graph, &delays);
        }
    }

    #[test]
    fn invalidate_rows_retimes_member_gates() {
        let nl = generators::alu("alu8", 8).unwrap();
        let n = nl.gate_count();
        let row_of: Vec<usize> = (0..n).map(|i| i % 4).collect();
        let delays: Vec<f64> = vec![10.0; n];
        let graph = TimingGraph::new(&nl).unwrap();
        let mut inc = IncrementalSta::with_rows(&graph, &delays, RowMap::new(&row_of));
        assert_eq!(inc.rows().unwrap().row_count(), 4);

        // Speed every gate of row 2 up by 20% through the bulk interface.
        let mut tuned = delays.clone();
        for (i, d) in inc.delays_mut().iter_mut().enumerate() {
            if row_of[i] == 2 {
                *d *= 0.8;
                tuned[i] *= 0.8;
            }
        }
        inc.invalidate_rows(&[2]);
        assert!(inc.is_dirty());
        assert_bit_identical(&mut inc, &graph, &tuned);
        assert!(!inc.is_dirty());
        assert_eq!(inc.generation(), 1);
        // Row-2 gates were recomputed this generation.
        assert!(inc.gate_generation(GateId::from_index(2)) == 1);
    }

    #[test]
    fn retime_without_changes_is_a_noop() {
        let nl = generators::ripple_adder("a8", 8, false).unwrap();
        let delays = vec![10.0; nl.gate_count()];
        let graph = TimingGraph::new(&nl).unwrap();
        let mut inc = IncrementalSta::new(&graph, &delays);
        let d0 = inc.dcrit_ps();
        assert_eq!(inc.retime().to_bits(), d0.to_bits());
        assert_eq!(inc.generation(), 0);
        // Writing a bit-equal delay queues nothing.
        inc.set_gate_delay(GateId::from_index(0), 10.0);
        assert!(!inc.is_dirty());
    }

    #[test]
    fn incremental_cone_is_smaller_than_full_pass() {
        let nl = generators::random_logic(
            "cone",
            &generators::RandomLogicOptions {
                target_gates: 400,
                n_inputs: 16,
                seed: 3,
                registered: false,
                locality_window: 16,
            },
        )
        .unwrap();
        let delays: Vec<f64> = vec![10.0; nl.gate_count()];
        let graph = TimingGraph::new(&nl).unwrap();
        let mut inc = IncrementalSta::new(&graph, &delays);
        // Touch one gate near the outputs: its cone must be far smaller than
        // the 2×n node visits of a full pass.
        let last = *graph.topo.last().unwrap();
        inc.set_gate_delay(last, 9.0);
        inc.retime();
        assert!(
            inc.last_retimed_nodes() < nl.gate_count(),
            "retimed {} of {} gates",
            inc.last_retimed_nodes(),
            nl.gate_count()
        );
    }

    #[test]
    fn dff_delay_change_propagates_incrementally() {
        // in -> inv(10) -> DFF(clk->q 30) -> inv(10) -> out
        let mut b = NetlistBuilder::new("seq");
        let a = b.input("a");
        let w1 = b.gate(CellKind::Inv, DriveStrength::X1, &[a]).unwrap();
        let q = b.dff(DriveStrength::X1, w1).unwrap();
        let w2 = b.gate(CellKind::Inv, DriveStrength::X1, &[q]).unwrap();
        b.output(w2, "y");
        let nl = b.finish().unwrap();
        let graph = TimingGraph::new(&nl).unwrap();
        let mut delays = vec![10.0, 30.0, 10.0];
        let mut inc = IncrementalSta::new(&graph, &delays);
        assert!((inc.dcrit_ps() - 40.0).abs() < 1e-9);
        delays[1] = 50.0;
        inc.set_gate_delay(GateId::from_index(1), 50.0);
        assert_bit_identical(&mut inc, &graph, &delays);
        assert!((inc.dcrit_ps() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn as_analysis_supports_path_extraction() {
        let nl = generators::alu("alu8", 8).unwrap();
        let mut delays: Vec<f64> = vec![10.0; nl.gate_count()];
        let graph = TimingGraph::new(&nl).unwrap();
        let mut inc = IncrementalSta::new(&graph, &delays);
        delays[3] = 18.0;
        inc.set_gate_delay(GateId::from_index(3), 18.0);
        let snap = inc.as_analysis();
        let full = graph.analyze(&delays);
        assert_eq!(snap.dcrit_ps().to_bits(), full.dcrit_ps().to_bits());
        assert_eq!(snap.critical_path_set().len(), full.critical_path_set().len());
    }

    #[test]
    fn launch_path_includes_the_flop() {
        let mut b = NetlistBuilder::new("seq");
        let a = b.input("a");
        let q = b.dff(DriveStrength::X1, a).unwrap();
        let w = b.gate(CellKind::Inv, DriveStrength::X1, &[q]).unwrap();
        b.output(w, "y");
        let nl = b.finish().unwrap();
        let g = TimingGraph::new(&nl).unwrap();
        let an = g.analyze(&[30.0, 10.0]);
        let p = an.longest_path_through(GateId::from_index(1));
        assert_eq!(p.gates, vec![GateId::from_index(0), GateId::from_index(1)]);
        assert!((p.delay_ps - 40.0).abs() < 1e-9);
    }
}
