//! Property tests: STA against exhaustive path enumeration on small random
//! DAGs, and structural invariants on larger ones.
//!
//! Inputs are seeded per test name and case index; set the workspace-wide
//! `FBB_TEST_SEED` environment variable to re-roll every stream
//! reproducibly (failures print the active seed).

use fbb_netlist::generators::{random_logic, RandomLogicOptions};
use fbb_netlist::{GateId, Netlist};
use fbb_sta::TimingGraph;
use proptest::prelude::*;
use rand::{Rng as _, SeedableRng as _};
use rand_chacha::ChaCha8Rng;

fn circuit(seed: u64, gates: usize) -> Netlist {
    random_logic(
        "p",
        &RandomLogicOptions {
            target_gates: gates,
            n_inputs: 6,
            seed,
            registered: false,
            locality_window: 10,
        },
    )
    .expect("valid generator")
}

fn delays(nl: &Netlist, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..nl.gate_count()).map(|_| rng.gen_range(1.0..20.0)).collect()
}

/// Exhaustively enumerates every source-to-sink path delay through DFS and
/// returns the worst delay through each gate. Only viable for small DAGs.
fn exhaustive_worst_through(nl: &Netlist, d: &[f64]) -> Vec<f64> {
    let n = nl.gate_count();
    // Worst prefix ending at each gate (recursive with memo = same DP, so
    // instead enumerate truly: DFS accumulating path delay from each source).
    let mut worst_prefix = vec![f64::NEG_INFINITY; n];
    let mut worst_suffix = vec![f64::NEG_INFINITY; n];

    // All paths from sources: iterate gates in every topological completion
    // via plain DFS enumeration.
    fn dfs_forward(nl: &Netlist, d: &[f64], gate: usize, acc: f64, worst: &mut [f64]) {
        let total = acc + d[gate];
        if total > worst[gate] {
            worst[gate] = total;
        }
        let out = nl.gates()[gate].output;
        for &sink in &nl.net(out).sinks {
            dfs_forward(nl, d, sink.index(), total, worst);
        }
    }
    fn dfs_backward(nl: &Netlist, d: &[f64], gate: usize, acc: f64, worst: &mut [f64]) {
        let total = acc + d[gate];
        if total > worst[gate] {
            worst[gate] = total;
        }
        for &input in &nl.gates()[gate].inputs {
            if let Some(driver) = nl.net(input).driver {
                dfs_backward(nl, d, driver.index(), total, worst);
            }
        }
    }
    for (id, gate) in nl.iter_gates() {
        let sources_only_pis =
            gate.inputs.iter().all(|&inp| nl.net(inp).driver.is_none());
        if sources_only_pis {
            dfs_forward(nl, d, id.index(), 0.0, &mut worst_prefix);
        }
        let is_sink = nl.net(gate.output).sinks.is_empty();
        if is_sink {
            dfs_backward(nl, d, id.index(), 0.0, &mut worst_suffix);
        }
    }
    (0..n).map(|i| worst_prefix[i] + worst_suffix[i] - d[i]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn longest_through_matches_exhaustive_enumeration(seed in 0u64..5_000) {
        // Small enough that full path enumeration terminates quickly
        // (path counts grow exponentially with reconvergent depth).
        let nl = circuit(seed, 22);
        let d = delays(&nl, seed ^ 0xABCD);
        let graph = TimingGraph::new(&nl).expect("acyclic");
        let analysis = graph.analyze(&d);
        let exhaustive = exhaustive_worst_through(&nl, &d);
        for (i, &expected) in exhaustive.iter().enumerate() {
            let got = analysis.longest_through_ps(GateId::from_index(i));
            prop_assert!((got - expected).abs() < 1e-6,
                "gate {i}: sta {got} vs exhaustive {expected}");
        }
    }

    #[test]
    fn dcrit_dominates_every_extracted_path(seed in 0u64..5_000) {
        let nl = circuit(seed, 150);
        let d = delays(&nl, seed ^ 0x1234);
        let graph = TimingGraph::new(&nl).expect("acyclic");
        let analysis = graph.analyze(&d);
        for path in analysis.critical_path_set() {
            prop_assert!(path.delay_ps <= analysis.dcrit_ps() + 1e-9);
            // Path delay equals the sum of its gate delays.
            let sum: f64 = path.gates.iter().map(|&g| d[g.index()]).sum();
            prop_assert!((sum - path.delay_ps).abs() < 1e-6);
            // Paths are connected chains: each gate drives the next.
            for pair in path.gates.windows(2) {
                let out = nl.gates()[pair[0].index()].output;
                prop_assert!(nl.net(out).sinks.contains(&pair[1]),
                    "path gates {} and {} are not connected", pair[0], pair[1]);
            }
        }
    }

    #[test]
    fn scaling_delays_scales_dcrit_linearly(seed in 0u64..5_000, k in 1.1f64..3.0) {
        let nl = circuit(seed, 120);
        let d = delays(&nl, seed);
        let scaled: Vec<f64> = d.iter().map(|&x| x * k).collect();
        let graph = TimingGraph::new(&nl).expect("acyclic");
        let a = graph.analyze(&d).dcrit_ps();
        let b = graph.analyze(&scaled).dcrit_ps();
        prop_assert!((b - a * k).abs() < 1e-6 * b.max(1.0));
    }

    #[test]
    fn incremental_retime_is_bit_identical_to_full_analyze(
        seed in 0u64..5_000,
        registered in proptest::arbitrary::any::<bool>(),
        flips in proptest::collection::vec((0usize..10_000, 1.0f64..20.0), 1..25),
    ) {
        // Randomized bias flips: after every delay change, the incremental
        // engine must reproduce a from-scratch analyze exactly — same bits,
        // not just the same values up to rounding.
        let nl = random_logic(
            "p",
            &RandomLogicOptions {
                target_gates: 120,
                n_inputs: 6,
                seed,
                registered,
                locality_window: 10,
            },
        )
        .expect("valid generator");
        let mut d = delays(&nl, seed ^ 0x5EED);
        let graph = TimingGraph::new(&nl).expect("acyclic");
        let mut inc = fbb_sta::IncrementalSta::new(&graph, &d);
        for (raw_gate, new_delay) in flips {
            let gate = raw_gate % nl.gate_count();
            d[gate] = new_delay;
            inc.set_gate_delay(GateId::from_index(gate), new_delay);
            let dcrit = inc.retime();
            let full = graph.analyze(&d);
            prop_assert_eq!(dcrit.to_bits(), full.dcrit_ps().to_bits());
            for i in 0..nl.gate_count() {
                let id = GateId::from_index(i);
                prop_assert_eq!(
                    inc.arrival_ps(id).to_bits(),
                    full.arrival_ps(id).to_bits(),
                    "arrival differs at gate {}", i
                );
                prop_assert_eq!(
                    inc.tail_ps(id).to_bits(),
                    full.tail_ps(id).to_bits(),
                    "tail differs at gate {}", i
                );
            }
        }
    }

    #[test]
    fn row_invalidation_is_bit_identical_to_full_analyze(
        seed in 0u64..5_000,
        n_rows in 2usize..8,
        flips in proptest::collection::vec((0usize..10_000, 0.5f64..1.0), 1..12),
    ) {
        // Row-granular bias moves through invalidate_rows: scale every gate
        // of one row (a bias step speeds the whole row up) and compare.
        let nl = circuit(seed, 140);
        let mut d = delays(&nl, seed ^ 0x0FBB);
        let graph = TimingGraph::new(&nl).expect("acyclic");
        let row_of: Vec<usize> = (0..nl.gate_count()).map(|i| i % n_rows).collect();
        let rows = fbb_sta::RowMap::new(&row_of);
        let mut inc = fbb_sta::IncrementalSta::with_rows(&graph, &d, rows);
        for (raw_row, scale) in flips {
            let row = raw_row % n_rows;
            for i in 0..nl.gate_count() {
                if row_of[i] == row {
                    d[i] *= scale;
                    inc.delays_mut()[i] = d[i];
                }
            }
            inc.invalidate_rows(&[row]);
            let dcrit = inc.retime();
            let full = graph.analyze(&d);
            prop_assert_eq!(dcrit.to_bits(), full.dcrit_ps().to_bits());
            for i in 0..nl.gate_count() {
                let id = GateId::from_index(i);
                prop_assert_eq!(
                    inc.arrival_ps(id).to_bits(),
                    full.arrival_ps(id).to_bits(),
                    "arrival differs at gate {}", i
                );
            }
        }
    }

    #[test]
    fn slack_is_nonnegative_and_zero_on_the_critical_path(seed in 0u64..5_000) {
        let nl = circuit(seed, 120);
        let d = delays(&nl, seed ^ 0x77);
        let graph = TimingGraph::new(&nl).expect("acyclic");
        let analysis = graph.analyze(&d);
        let mut min_slack = f64::INFINITY;
        for i in 0..nl.gate_count() {
            let s = analysis.slack_through_ps(GateId::from_index(i));
            prop_assert!(s > -1e-9, "negative slack {s} at gate {i}");
            min_slack = min_slack.min(s);
        }
        prop_assert!(min_slack.abs() < 1e-9, "some gate must sit on the critical path");
    }
}
