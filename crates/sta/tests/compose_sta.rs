//! Hierarchical composition is invisible to timing: analyzing a design
//! composed with any merge group size is `f64::to_bits`-identical to
//! analyzing the flat merge of the same leaves.
//!
//! This is the property that lets the sweep layer compose 100k-gate designs
//! hierarchically (cheap, parallel-friendly merges) while every timing
//! result stays exactly what the flat reference produces: `merge` offsets
//! gate/net ids without reordering, so grouping only changes net *names*,
//! which STA never reads.

use fbb_device::{BiasLadder, BodyBiasModel, Library};
use fbb_netlist::{compose, ComposeOptions};
use fbb_sta::TimingGraph;
use proptest::prelude::*;

/// Per-gate nominal delays from the library characterization (level 0).
fn library_delays(nl: &fbb_netlist::Netlist) -> Vec<f64> {
    let library = Library::date09_45nm();
    let chara = library
        .characterize(&BodyBiasModel::date09_45nm(), &BiasLadder::date09().expect("ladder"));
    nl.gates().iter().map(|g| chara.delay_ps(g.cell, 0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn hierarchical_sta_bit_identical_to_flat(
        target in 2_000usize..8_000,
        group in 2usize..12,
    ) {
        let opts = ComposeOptions { group_size: group, ..ComposeOptions::with_target(target) };
        let hier = compose("soc", &opts).unwrap();
        let flat = compose("soc", &opts.clone().flat()).unwrap();

        let delays = library_delays(&hier.netlist);
        let hg = TimingGraph::new(&hier.netlist).unwrap();
        let fg = TimingGraph::new(&flat.netlist).unwrap();
        let h = hg.analyze(&delays);
        let f = fg.analyze(&delays);

        prop_assert_eq!(h.dcrit_ps().to_bits(), f.dcrit_ps().to_bits());
        for i in 0..hier.netlist.gate_count() {
            let g = fbb_netlist::GateId::from_index(i);
            prop_assert_eq!(h.arrival_ps(g).to_bits(), f.arrival_ps(g).to_bits());
            prop_assert_eq!(h.tail_ps(g).to_bits(), f.tail_ps(g).to_bits());
        }
    }
}

/// Golden pin for the default 50k-gate composition: gate count and critical
/// delay under library delays. Any change to the palette, tiling order,
/// stitching, or generators shows up here first.
#[test]
fn golden_50k_composition() {
    let d = compose("soc50k", &ComposeOptions::with_target(50_000)).unwrap();
    assert_eq!(d.netlist.gate_count(), 50_161);
    assert_eq!(d.blocks.len(), 134);
    let delays = library_delays(&d.netlist);
    let graph = TimingGraph::new(&d.netlist).unwrap();
    let timing = graph.analyze(&delays);
    assert_eq!(
        timing.dcrit_ps().to_bits(),
        f64::to_bits(1240.3999999999996),
        "critical delay drifted: got {:?}",
        timing.dcrit_ps()
    );
}
