//! NBTI transistor-aging model.

use serde::{Deserialize, Serialize};

/// Negative-bias temperature instability: PMOS threshold voltage drifts as a
/// fractional power of stress time, slowing logic over the product lifetime
/// (the paper's aging citation, Mitra IRPS'08, predicts failures from this
/// drift; the clustered-FBB knob compensates it in the field).
///
/// `ΔVth(t) = a · t^n` with `t` in years; delay slowdown is linear in the
/// Vth shift at these magnitudes.
///
/// ```
/// use fbb_variation::NbtiAging;
///
/// let nbti = NbtiAging::typical_45nm();
/// let fresh = nbti.delay_multiplier(0.0);
/// let worn = nbti.delay_multiplier(7.0);
/// assert_eq!(fresh, 1.0);
/// assert!(worn > 1.03 && worn < 1.15);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NbtiAging {
    /// Vth drift amplitude in millivolts at t = 1 year.
    pub a_mv_per_yearn: f64,
    /// Time exponent (classically ~1/6).
    pub n: f64,
    /// Delay sensitivity per millivolt of Vth shift.
    pub delay_per_mv: f64,
}

impl NbtiAging {
    /// Typical high-stress 45 nm parameters: ~25 mV drift in the first year,
    /// `n = 0.16`, ~0.15 %/mV delay sensitivity.
    pub fn typical_45nm() -> Self {
        NbtiAging { a_mv_per_yearn: 25.0, n: 0.16, delay_per_mv: 0.0015 }
    }

    /// Vth drift (millivolts) after `years` of stress.
    ///
    /// # Panics
    ///
    /// Panics if `years` is negative.
    pub fn vth_shift_mv(&self, years: f64) -> f64 {
        assert!(years >= 0.0, "stress time must be non-negative");
        if years == 0.0 {
            return 0.0;
        }
        self.a_mv_per_yearn * years.powf(self.n)
    }

    /// Delay multiplier after `years` of stress.
    ///
    /// # Panics
    ///
    /// Panics if `years` is negative.
    pub fn delay_multiplier(&self, years: f64) -> f64 {
        1.0 + self.delay_per_mv * self.vth_shift_mv(years)
    }

    /// The slowdown coefficient β the tuning loop must compensate after
    /// `years` (equals `delay_multiplier − 1`).
    ///
    /// # Panics
    ///
    /// Panics if `years` is negative.
    pub fn beta(&self, years: f64) -> f64 {
        self.delay_multiplier(years) - 1.0
    }
}

impl Default for NbtiAging {
    fn default() -> Self {
        Self::typical_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_grows_sublinearly() {
        let nbti = NbtiAging::typical_45nm();
        let y1 = nbti.vth_shift_mv(1.0);
        let y8 = nbti.vth_shift_mv(8.0);
        assert!(y8 > y1);
        assert!(y8 < 8.0 * y1, "t^0.16 is strongly sublinear");
    }

    #[test]
    fn fresh_device_unaffected() {
        let nbti = NbtiAging::typical_45nm();
        assert_eq!(nbti.vth_shift_mv(0.0), 0.0);
        assert_eq!(nbti.delay_multiplier(0.0), 1.0);
        assert_eq!(nbti.beta(0.0), 0.0);
    }

    #[test]
    fn ten_year_slowdown_in_compensable_range() {
        // The paper compensates up to beta = 10%; a decade of NBTI should
        // land within that envelope.
        let nbti = NbtiAging::typical_45nm();
        let beta = nbti.beta(10.0);
        assert!((0.02..=0.10).contains(&beta), "{beta}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        let _ = NbtiAging::typical_45nm().vth_shift_mv(-1.0);
    }
}
