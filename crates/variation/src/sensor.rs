//! Post-silicon timing sensing.

use serde::{Deserialize, Serialize};

/// A critical-path-replica timing monitor (paper §3.1).
///
/// On silicon, replicas of the critical path (or flip-flop shadow monitors)
/// flag when signal transitions land beyond a threshold. The controller
/// converts the observation into a slowdown coefficient β with finite
/// resolution and adds a guard band so the compensation never undershoots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPathSensor {
    /// Measurement quantization step for β (e.g. 0.01 = 1 % steps).
    pub resolution: f64,
    /// Additive guard band applied on top of the measured β.
    pub guard_band: f64,
}

impl CriticalPathSensor {
    /// A 1 %-resolution sensor with a 0.5 % guard band.
    pub fn new(resolution: f64, guard_band: f64) -> Self {
        CriticalPathSensor { resolution, guard_band }
    }

    /// Measures β from the nominal and observed critical delays, rounding
    /// *up* to the sensor resolution and adding the guard band. A die faster
    /// than nominal measures β = 0 (FBB is never used to slow down).
    ///
    /// # Panics
    ///
    /// Panics if `nominal_ps` is not positive.
    pub fn measure_beta(&self, nominal_ps: f64, observed_ps: f64) -> f64 {
        assert!(nominal_ps > 0.0, "nominal delay must be positive");
        let raw = (observed_ps / nominal_ps - 1.0).max(0.0);
        if raw == 0.0 {
            return 0.0;
        }
        let quantized = if self.resolution > 0.0 {
            // Epsilon guards against float dust pushing an exact multiple of
            // the resolution (e.g. 103/100 - 1) up a whole step.
            ((raw - 1e-9) / self.resolution).ceil() * self.resolution
        } else {
            raw
        };
        quantized + self.guard_band
    }
}

impl Default for CriticalPathSensor {
    fn default() -> Self {
        CriticalPathSensor::new(0.01, 0.005)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_die_reads_zero() {
        let s = CriticalPathSensor::default();
        assert_eq!(s.measure_beta(100.0, 95.0), 0.0);
        assert_eq!(s.measure_beta(100.0, 100.0), 0.0);
    }

    #[test]
    fn quantizes_up() {
        let s = CriticalPathSensor::new(0.01, 0.0);
        // 3.2% slow reads as 4%.
        assert!((s.measure_beta(100.0, 103.2) - 0.04).abs() < 1e-12);
        // Exactly 3% reads as 3%.
        assert!((s.measure_beta(100.0, 103.0) - 0.03).abs() < 1e-9);
    }

    #[test]
    fn guard_band_added() {
        let s = CriticalPathSensor::new(0.01, 0.005);
        assert!((s.measure_beta(100.0, 104.1) - 0.055).abs() < 1e-12);
    }

    #[test]
    fn measured_beta_always_covers_true_slowdown() {
        let s = CriticalPathSensor::default();
        for pct in 1..15 {
            let observed = 100.0 * (1.0 + f64::from(pct) / 100.0);
            let beta = s.measure_beta(100.0, observed);
            assert!(beta >= f64::from(pct) / 100.0, "beta {beta} below actual {pct}%");
        }
    }

    #[test]
    fn zero_resolution_passthrough() {
        let s = CriticalPathSensor::new(0.0, 0.0);
        assert!((s.measure_beta(200.0, 210.0) - 0.05).abs() < 1e-12);
    }
}
