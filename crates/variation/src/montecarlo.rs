//! Monte-Carlo timing-yield estimation.

use fbb_netlist::Netlist;
use fbb_placement::Placement;
use fbb_sta::TimingGraph;
use serde::{Deserialize, Serialize};

use crate::ProcessVariation;

/// Monte-Carlo estimator of parametric timing yield: the fraction of
/// sampled dies whose critical delay meets the clock period.
///
/// This quantifies the *problem* the paper solves — uncompensated slow-corner
/// dies fail timing — and, run again after compensation, the benefit.
#[derive(Debug, Clone)]
pub struct MonteCarloYield<'a> {
    netlist: &'a Netlist,
    placement: &'a Placement,
    nominal_delays: &'a [f64],
}

/// Aggregate result of a yield run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YieldEstimate {
    /// Dies sampled.
    pub samples: usize,
    /// Fraction of dies meeting the clock.
    pub yield_fraction: f64,
    /// Mean effective slowdown β across dies.
    pub beta_mean: f64,
    /// Maximum observed β.
    pub beta_max: f64,
    /// β needed to cover 95 % of dies (sorted 95th percentile).
    pub beta_p95: f64,
}

impl<'a> MonteCarloYield<'a> {
    /// Creates an estimator over a placed design with nominal per-gate
    /// delays.
    pub fn new(netlist: &'a Netlist, placement: &'a Placement, nominal_delays: &'a [f64]) -> Self {
        MonteCarloYield { netlist, placement, nominal_delays }
    }

    /// Samples `samples` dies from `variation` and checks each against
    /// `clock_ps`.
    ///
    /// # Errors
    ///
    /// Propagates [`fbb_netlist::NetlistError`] from timing-graph
    /// construction.
    pub fn estimate(
        &self,
        variation: &ProcessVariation,
        clock_ps: f64,
        samples: usize,
        seed: u64,
    ) -> Result<YieldEstimate, fbb_netlist::NetlistError> {
        let graph = TimingGraph::new(self.netlist)?;
        let nominal_dcrit = graph.analyze(self.nominal_delays).dcrit_ps();
        let positions: Vec<(f64, f64)> = (0..self.netlist.gate_count())
            .map(|i| self.placement.position_um(fbb_netlist::GateId::from_index(i)))
            .collect();
        let extent = (self.placement.die().width_um(), self.placement.die().height_um());

        // Each die is seeded from its own sample index, so the samples are
        // independent and evaluated across the worker pool; results come
        // back in sample order, keeping the estimate bit-identical to the
        // serial loop for a given seed.
        let _mc_span = fbb_telemetry::span("mc_estimate");
        let dcrits = fbb_sta::par::parallel_gen(samples, |s| {
            let die = variation.sample(seed.wrapping_add(s as u64), &positions, extent);
            let delays = die.apply(self.nominal_delays);
            graph.analyze(&delays).dcrit_ps()
        });
        let mut betas = Vec::with_capacity(samples);
        let mut pass = 0usize;
        let telemetry = fbb_telemetry::is_enabled();
        if telemetry {
            fbb_telemetry::counter("mc_runs", 1);
            fbb_telemetry::counter("mc_samples", samples as u64);
        }
        for dcrit in dcrits {
            if dcrit <= clock_ps {
                pass += 1;
            }
            if telemetry {
                // Per-die observations happen here, after the parallel
                // collect returned results in sample order, so the
                // distributions are deterministic for a fixed seed.
                fbb_telemetry::record("mc_die_dcrit_ps", dcrit);
                fbb_telemetry::record("mc_die_beta", (dcrit / nominal_dcrit - 1.0).max(0.0));
            }
            betas.push((dcrit / nominal_dcrit - 1.0).max(0.0));
        }
        betas.sort_by(|a, b| a.partial_cmp(b).expect("betas are finite"));
        let beta_mean = betas.iter().sum::<f64>() / samples.max(1) as f64;
        let beta_max = betas.last().copied().unwrap_or(0.0);
        let p95_idx = ((samples as f64) * 0.95).ceil() as usize;
        let beta_p95 = betas.get(p95_idx.saturating_sub(1).min(samples.saturating_sub(1)))
            .copied()
            .unwrap_or(0.0);
        Ok(YieldEstimate {
            samples,
            yield_fraction: pass as f64 / samples.max(1) as f64,
            beta_mean,
            beta_max,
            beta_p95,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbb_device::Library;
    use fbb_netlist::generators;
    use fbb_placement::{Placer, PlacerOptions};

    fn setup() -> (Netlist, Placement, Vec<f64>) {
        let nl = generators::ripple_adder("a16", 16, false).unwrap();
        let p = Placer::new(PlacerOptions::with_target_rows(6))
            .place(&nl, &Library::date09_45nm())
            .unwrap();
        let delays = vec![10.0; nl.gate_count()];
        (nl, p, delays)
    }

    #[test]
    fn tight_clock_fails_slow_population() {
        let (nl, p, delays) = setup();
        let mc = MonteCarloYield::new(&nl, &p, &delays);
        let graph = TimingGraph::new(&nl).unwrap();
        let dcrit = graph.analyze(&delays).dcrit_ps();
        let pv = ProcessVariation::slow_corner_45nm();

        // Clock exactly at nominal: the slow-corner population mostly fails.
        let est = mc.estimate(&pv, dcrit, 60, 11).unwrap();
        assert!(est.yield_fraction < 0.5, "yield {}", est.yield_fraction);
        assert!(est.beta_mean > 0.02);
        assert!(est.beta_p95 >= est.beta_mean);
        assert!(est.beta_max >= est.beta_p95);

        // A 20% relaxed clock passes nearly everything.
        let est = mc.estimate(&pv, dcrit * 1.2, 60, 11).unwrap();
        assert!(est.yield_fraction > 0.95, "yield {}", est.yield_fraction);
    }

    #[test]
    fn deterministic_in_seed() {
        let (nl, p, delays) = setup();
        let mc = MonteCarloYield::new(&nl, &p, &delays);
        let pv = ProcessVariation::typical_45nm();
        let a = mc.estimate(&pv, 1000.0, 25, 5).unwrap();
        let b = mc.estimate(&pv, 1000.0, 25, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn typical_population_beats_slow_corner() {
        let (nl, p, delays) = setup();
        let mc = MonteCarloYield::new(&nl, &p, &delays);
        let graph = TimingGraph::new(&nl).unwrap();
        let clock = graph.analyze(&delays).dcrit_ps() * 1.04;
        let slow = mc.estimate(&ProcessVariation::slow_corner_45nm(), clock, 50, 9).unwrap();
        let typical = mc.estimate(&ProcessVariation::typical_45nm(), clock, 50, 9).unwrap();
        assert!(typical.yield_fraction >= slow.yield_fraction);
    }
}
