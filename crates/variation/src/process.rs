//! Process-variation sampling.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Standard-normal draw via the Box–Muller transform (avoids a `rand_distr`
/// dependency).
fn gauss(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A die-to-die + within-die process-variation model producing per-gate
/// delay multipliers.
///
/// Within-die variation has a **systematic** spatially correlated component
/// (modelled by bilinear interpolation over a coarse Gaussian grid — nearby
/// gates see similar shifts, which is what makes *physically clustered*
/// compensation effective) and an independent **random** component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessVariation {
    /// Sigma of the global (die-to-die) delay shift.
    pub d2d_sigma: f64,
    /// Mean of the global shift (positive = slow-corner population).
    pub d2d_mean: f64,
    /// Sigma of the spatially correlated within-die component.
    pub wid_systematic_sigma: f64,
    /// Sigma of the independent per-gate component.
    pub wid_random_sigma: f64,
    /// Correlation grid resolution (cells per die edge).
    pub grid: usize,
}

impl ProcessVariation {
    /// A slow-corner 45 nm population: dies average ~5 % slow with ±3 %
    /// systematic and ±1.5 % random within-die spread — the kind of part the
    /// paper's FBB tuning rescues.
    pub fn slow_corner_45nm() -> Self {
        ProcessVariation {
            d2d_sigma: 0.025,
            d2d_mean: 0.05,
            wid_systematic_sigma: 0.03,
            wid_random_sigma: 0.015,
            grid: 8,
        }
    }

    /// A typical (centered) population.
    pub fn typical_45nm() -> Self {
        ProcessVariation { d2d_mean: 0.0, ..Self::slow_corner_45nm() }
    }

    /// Samples one die: `positions[i]` is gate `i`'s (x, y) in micrometres,
    /// `extent` the die (width, height).
    ///
    /// Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `grid == 0` or any sigma is negative.
    pub fn sample(&self, seed: u64, positions: &[(f64, f64)], extent: (f64, f64)) -> DieSample {
        assert!(self.grid >= 1, "correlation grid must be at least 1x1");
        assert!(
            self.d2d_sigma >= 0.0 && self.wid_systematic_sigma >= 0.0 && self.wid_random_sigma >= 0.0,
            "sigmas must be non-negative"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        let d2d = self.d2d_mean + self.d2d_sigma * gauss(&mut rng);

        // Gaussian grid with (grid + 1)^2 corners for bilinear interpolation.
        let corners = self.grid + 1;
        let grid_vals: Vec<f64> = (0..corners * corners)
            .map(|_| self.wid_systematic_sigma * gauss(&mut rng))
            .collect();
        let (w, h) = extent;
        let systematic = |x: f64, y: f64| -> f64 {
            let gx = (x / w.max(1e-9)).clamp(0.0, 1.0) * self.grid as f64;
            let gy = (y / h.max(1e-9)).clamp(0.0, 1.0) * self.grid as f64;
            let ix = (gx as usize).min(corners - 2);
            let iy = (gy as usize).min(corners - 2);
            let fx = gx - ix as f64;
            let fy = gy - iy as f64;
            let v00 = grid_vals[iy * corners + ix];
            let v10 = grid_vals[iy * corners + ix + 1];
            let v01 = grid_vals[(iy + 1) * corners + ix];
            let v11 = grid_vals[(iy + 1) * corners + ix + 1];
            v00 * (1.0 - fx) * (1.0 - fy)
                + v10 * fx * (1.0 - fy)
                + v01 * (1.0 - fx) * fy
                + v11 * fx * fy
        };

        let multipliers = positions
            .iter()
            .map(|&(x, y)| {
                let m = 1.0 + d2d + systematic(x, y) + self.wid_random_sigma * gauss(&mut rng);
                m.max(0.5)
            })
            .collect();
        DieSample { d2d, multipliers }
    }
}

/// One sampled die: per-gate delay multipliers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DieSample {
    /// The global die-to-die shift drawn for this die.
    pub d2d: f64,
    /// Per-gate delay multipliers (indexed like the netlist's gates).
    pub multipliers: Vec<f64>,
}

impl DieSample {
    /// Applies the multipliers to nominal delays.
    ///
    /// # Panics
    ///
    /// Panics if `nominal.len() != self.multipliers.len()`.
    pub fn apply(&self, nominal: &[f64]) -> Vec<f64> {
        assert_eq!(nominal.len(), self.multipliers.len(), "one multiplier per gate");
        nominal.iter().zip(&self.multipliers).map(|(&d, &m)| d * m).collect()
    }

    /// Mean multiplier across gates.
    pub fn mean(&self) -> f64 {
        if self.multipliers.is_empty() {
            return 1.0;
        }
        self.multipliers.iter().sum::<f64>() / self.multipliers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_positions(n: usize, w: f64, h: f64) -> Vec<(f64, f64)> {
        (0..n).map(|i| (w * (i % 10) as f64 / 10.0, h * (i / 10) as f64 / (n as f64 / 10.0))).collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let pv = ProcessVariation::slow_corner_45nm();
        let pos = grid_positions(200, 100.0, 100.0);
        let a = pv.sample(1, &pos, (100.0, 100.0));
        let b = pv.sample(1, &pos, (100.0, 100.0));
        assert_eq!(a, b);
        let c = pv.sample(2, &pos, (100.0, 100.0));
        assert_ne!(a, c);
    }

    #[test]
    fn slow_corner_is_slow_on_average() {
        let pv = ProcessVariation::slow_corner_45nm();
        let pos = grid_positions(500, 100.0, 100.0);
        let mean: f64 =
            (0..40).map(|s| pv.sample(s, &pos, (100.0, 100.0)).mean()).sum::<f64>() / 40.0;
        assert!((0.02..=0.09).contains(&(mean - 1.0)), "population mean {mean}");
    }

    #[test]
    fn nearby_gates_are_correlated() {
        // Correlation of neighbours' systematic shift should exceed the
        // correlation of far-apart gates.
        let pv = ProcessVariation {
            wid_random_sigma: 0.0,
            d2d_sigma: 0.0,
            d2d_mean: 0.0,
            ..ProcessVariation::slow_corner_45nm()
        };
        let mut near_diff = 0.0;
        let mut far_diff = 0.0;
        for seed in 0..30 {
            let pos = vec![(10.0, 10.0), (12.0, 10.0), (90.0, 90.0)];
            let die = pv.sample(seed, &pos, (100.0, 100.0));
            near_diff += (die.multipliers[0] - die.multipliers[1]).abs();
            far_diff += (die.multipliers[0] - die.multipliers[2]).abs();
        }
        assert!(near_diff < far_diff, "near {near_diff} vs far {far_diff}");
    }

    #[test]
    fn apply_scales_delays() {
        let die = DieSample { d2d: 0.0, multipliers: vec![1.0, 2.0, 0.5] };
        assert_eq!(die.apply(&[10.0, 10.0, 10.0]), vec![10.0, 20.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "one multiplier per gate")]
    fn apply_checks_length() {
        let die = DieSample { d2d: 0.0, multipliers: vec![1.0] };
        let _ = die.apply(&[1.0, 2.0]);
    }

    #[test]
    fn multipliers_are_floored() {
        let pv = ProcessVariation {
            d2d_mean: -2.0, // absurdly fast corner
            ..ProcessVariation::slow_corner_45nm()
        };
        let die = pv.sample(3, &grid_positions(50, 10.0, 10.0), (10.0, 10.0));
        assert!(die.multipliers.iter().all(|&m| m >= 0.5));
    }
}
