//! Variability sources and post-silicon sensing.
//!
//! The paper compensates design slowdown caused by **process variation**,
//! **temperature**, and **NBTI aging** (§1, §3.1), sensing the slowdown on
//! silicon and expressing it as a slowdown coefficient `β` that the FBB
//! allocator then compensates. The authors had fabricated dies and on-chip
//! monitors; we simulate that silicon:
//!
//! * [`ProcessVariation`] — die-to-die plus spatially correlated within-die
//!   threshold/channel variation, sampled into per-gate delay multipliers;
//! * [`temperature_derating`] — linear delay derating with die temperature;
//! * [`NbtiAging`] — the classic fractional-power (`t^n`) Vth drift model;
//! * [`CriticalPathSensor`] — a critical-path-replica monitor that measures
//!   an effective `β` with finite resolution and a guard band (the paper's
//!   §3.1 calibration step);
//! * [`MonteCarloYield`] — timing-yield estimation across sampled dies.
//!
//! # Example
//!
//! ```
//! use fbb_netlist::generators;
//! use fbb_sta::TimingGraph;
//! use fbb_variation::{CriticalPathSensor, ProcessVariation};
//!
//! # fn main() -> Result<(), fbb_netlist::NetlistError> {
//! let nl = generators::ripple_adder("a8", 8, false).expect("valid generator");
//! let graph = TimingGraph::new(&nl)?;
//! let nominal: Vec<f64> = vec![10.0; nl.gate_count()];
//!
//! let pv = ProcessVariation::slow_corner_45nm();
//! let positions: Vec<(f64, f64)> = (0..nl.gate_count()).map(|i| (i as f64, 0.0)).collect();
//! let die = pv.sample(7, &positions, (nl.gate_count() as f64, 1.0));
//! let degraded = die.apply(&nominal);
//!
//! let sensor = CriticalPathSensor::default();
//! let beta = sensor.measure_beta(
//!     graph.analyze(&nominal).dcrit_ps(),
//!     graph.analyze(&degraded).dcrit_ps(),
//! );
//! assert!(beta >= 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aging;
mod montecarlo;
mod process;
mod sensor;
mod temperature;

pub use aging::NbtiAging;
pub use montecarlo::{MonteCarloYield, YieldEstimate};
pub use process::{DieSample, ProcessVariation};
pub use sensor::CriticalPathSensor;
pub use temperature::temperature_derating;
