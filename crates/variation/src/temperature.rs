//! Temperature-induced delay derating.

/// Delay multiplier at die temperature `temp_c` (°C), relative to 25 °C.
///
/// Uses the linear derating typical of 45 nm standard-cell libraries,
/// ~0.12 %/°C — a 100 °C hot spot slows logic by ~9 %, the magnitude the
/// paper's temperature-compensation citation (Kumar et al., ASPDAC'06)
/// targets with ABB.
///
/// ```
/// use fbb_variation::temperature_derating;
///
/// assert_eq!(temperature_derating(25.0), 1.0);
/// assert!(temperature_derating(105.0) > 1.08);
/// assert!(temperature_derating(-20.0) < 1.0);
/// ```
pub fn temperature_derating(temp_c: f64) -> f64 {
    const SLOPE_PER_C: f64 = 0.0012;
    1.0 + SLOPE_PER_C * (temp_c - 25.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_point_is_identity() {
        assert!((temperature_derating(25.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_temperature() {
        let mut prev = temperature_derating(-40.0);
        for t in (-30..=125).step_by(5) {
            let m = temperature_derating(f64::from(t));
            assert!(m > prev);
            prev = m;
        }
    }

    #[test]
    fn hot_die_magnitude_matches_literature() {
        let m = temperature_derating(110.0);
        assert!((1.08..=1.14).contains(&m), "{m}");
    }
}
