//! Property tests: physical-model invariants over arbitrary ladders, cells,
//! and bias points.

use fbb_device::rbb::{RbbModel, ReverseBiasVoltage};
use fbb_device::{BiasLadder, BiasVoltage, BodyBiasModel, Cell, CellKind, DriveStrength, Library};
use proptest::prelude::*;

fn any_cell() -> impl Strategy<Value = Cell> {
    (0..CellKind::ALL.len(), 0..DriveStrength::ALL.len())
        .prop_map(|(k, d)| Cell::new(CellKind::ALL[k], DriveStrength::ALL[d]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn delay_and_leakage_are_monotone_in_bias(mv1 in 0u32..950, mv2 in 0u32..950) {
        let model = BodyBiasModel::date09_45nm();
        let (lo, hi) = (mv1.min(mv2), mv1.max(mv2));
        let (vlo, vhi) = (BiasVoltage::from_millivolts(lo), BiasVoltage::from_millivolts(hi));
        prop_assert!(model.delay_factor(vhi) <= model.delay_factor(vlo));
        prop_assert!(model.leakage_multiplier(vhi) >= model.leakage_multiplier(vlo));
        prop_assert!(model.total_leakage_multiplier(vhi) >= model.total_leakage_multiplier(vlo));
        // Delay factor stays physical across the sweep range.
        prop_assert!(model.delay_factor(vhi) > 0.0);
    }

    #[test]
    fn characterization_matches_model_for_every_cell(cell in any_cell(), level in 0usize..11) {
        let model = BodyBiasModel::date09_45nm();
        let ladder = BiasLadder::date09().expect("valid ladder");
        let library = Library::date09_45nm();
        let chara = library.characterize(&model, &ladder);
        let v = ladder.level(level);
        let expect_delay = library.nbb_delay_ps(cell) * model.delay_factor(v);
        let expect_leak = library.nbb_leakage_nw(cell) * model.leakage_multiplier(v);
        prop_assert!((chara.delay_ps(cell, level) - expect_delay).abs() < 1e-9);
        prop_assert!((chara.leakage_nw(cell, level) - expect_leak).abs() < 1e-9);
        prop_assert!(chara.delay_reduction_ps(cell, level) >= -1e-12);
    }

    #[test]
    fn arbitrary_ladders_keep_their_invariants(
        resolution in 1u32..200,
        steps in 1u32..24,
    ) {
        let max = resolution * steps;
        let ladder = BiasLadder::with_resolution(resolution, max).expect("divides evenly");
        prop_assert_eq!(ladder.len(), steps as usize + 1);
        prop_assert_eq!(ladder.level(0), BiasVoltage::ZERO);
        prop_assert_eq!(ladder.max(), BiasVoltage::from_millivolts(max));
        for (i, v) in ladder.iter() {
            prop_assert_eq!(ladder.index_of(v), Some(i));
            if i > 0 {
                prop_assert!(v > ladder.level(i - 1));
            }
        }
    }

    #[test]
    fn rbb_leakage_is_continuous_and_bounded(mv in 0u32..1000) {
        let m = RbbModel::date09_45nm();
        let v = ReverseBiasVoltage::from_millivolts(mv);
        let leak = m.leakage_multiplier(v);
        prop_assert!(leak > 0.0);
        // Never better than the subthreshold floor alone.
        prop_assert!(leak >= (-m.subvt_alpha * v.volts()).exp() - 1e-12);
        // Optimum found by scan really is no worse than this point.
        let opt = m.optimal_bias(25);
        if mv % 25 == 0 {
            prop_assert!(m.leakage_multiplier(opt) <= leak + 1e-12);
        }
        prop_assert!(m.delay_factor(v) >= 1.0);
    }

    #[test]
    fn custom_models_respect_their_anchors(
        speedup_pct in 1.0f64..20.0,
        alpha in 0.1f64..4.0,
    ) {
        let vdd = 0.95;
        let usable = BiasVoltage::from_millivolts(500);
        let model = BodyBiasModel::new(speedup_pct / 100.0, alpha, vdd, usable)
            .expect("parameters are in the valid range");
        let v = BiasVoltage::from_millivolts(500);
        prop_assert!((model.speedup_fraction(v) - speedup_pct / 100.0 * 0.5).abs() < 1e-12);
        prop_assert!((model.leakage_multiplier(v) - (alpha * 0.5).exp()).abs() < 1e-9);
        prop_assert!(model.is_usable(v));
        prop_assert!(!model.is_usable(BiasVoltage::from_millivolts(501)));
    }
}
