//! Body-bias device physics and standard-cell library characterization.
//!
//! This crate models the silicon-level substrate of the DATE 2009 paper
//! *"Physically Clustered Forward Body Biasing for Variability Compensation
//! in Nanometer CMOS design"*: how gate delay and leakage power respond to a
//! forward body-bias (FBB) voltage `vbs` in a 45 nm CMOS process.
//!
//! The paper characterized a real STMicroelectronics 45 nm library with
//! SPICE. We reproduce the *measured shape* of that characterization
//! (paper Fig. 1) analytically:
//!
//! * delay decreases **linearly** with `vbs` — 21 % speed-up at
//!   `vbs = 0.95 V`;
//! * subthreshold leakage grows **exponentially** with `vbs` — 12.74× at
//!   `vbs = 0.95 V`;
//! * beyond ~0.5 V the forward source–body junction begins to conduct,
//!   which is why the paper restricts the usable range to 0–0.5 V.
//!
//! # Example
//!
//! ```
//! use fbb_device::{BiasLadder, BodyBiasModel, Cell, CellKind, DriveStrength, Library};
//!
//! # fn main() -> Result<(), fbb_device::DeviceError> {
//! let model = BodyBiasModel::date09_45nm();
//! let ladder = BiasLadder::date09()?; // 11 levels: 0 mV .. 500 mV in 50 mV steps
//! let library = Library::date09_45nm();
//! let chara = library.characterize(&model, &ladder);
//!
//! let inv = Cell::new(CellKind::Inv, DriveStrength::X1);
//! // Full forward bias makes the inverter ~11% faster ...
//! assert!(chara.delay_ps(inv, ladder.len() - 1) < 0.9 * chara.delay_ps(inv, 0));
//! // ... but close to 4x leakier.
//! assert!(chara.leakage_nw(inv, ladder.len() - 1) > 3.5 * chara.leakage_nw(inv, 0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bias;
mod cells;
mod error;
mod library;
mod model;
pub mod rbb;

pub use bias::{BiasLadder, BiasVoltage};
pub use cells::{Cell, CellKind, DriveStrength};
pub use error::DeviceError;
pub use library::{CellData, Characterization, Library};
pub use model::{BodyBiasModel, BodyBiasParams};
