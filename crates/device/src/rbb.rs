//! Reverse body bias (RBB) — the other half of bidirectional ABB.
//!
//! The paper applies FBB to slow dies; prior art ([Tschanz et al., JSSC'02])
//! uses *bidirectional* ABB, reverse-biasing fast dies to cut their leakage.
//! §3.2 explains why RBB is the weaker knob in scaled nodes: it worsens
//! short-channel effects and Vth variation, and band-to-band tunnelling
//! (BTBT) grows with reverse bias, so the net leakage reduction saturates
//! and then *reverses* — "its effectiveness diminishes as technology is
//! scaled". This module models that trade so fast-die recovery experiments
//! can quantify it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A reverse body-bias voltage magnitude, quantized to millivolts
/// (`vbsn = −v`, `vbsp = Vdd + v`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ReverseBiasVoltage(u32);

impl ReverseBiasVoltage {
    /// No reverse bias.
    pub const ZERO: ReverseBiasVoltage = ReverseBiasVoltage(0);

    /// Creates a reverse bias from a magnitude in millivolts.
    pub const fn from_millivolts(mv: u32) -> Self {
        ReverseBiasVoltage(mv)
    }

    /// Magnitude in millivolts.
    pub const fn millivolts(self) -> u32 {
        self.0
    }

    /// Magnitude in volts.
    pub fn volts(self) -> f64 {
        f64::from(self.0) * 1e-3
    }
}

impl fmt::Display for ReverseBiasVoltage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "-{}mV", self.0)
    }
}

/// Reverse-body-bias response model for a scaled (45 nm) node.
///
/// Subthreshold leakage falls exponentially with reverse bias while the
/// BTBT junction component rises, producing a shallow optimum; delay grows
/// linearly (Vth increases).
///
/// ```
/// use fbb_device::rbb::{RbbModel, ReverseBiasVoltage};
///
/// let m = RbbModel::date09_45nm();
/// let v = ReverseBiasVoltage::from_millivolts(300);
/// assert!(m.leakage_multiplier(v) < 1.0); // leaks less
/// assert!(m.delay_factor(v) > 1.0);       // but runs slower
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RbbModel {
    /// Subthreshold attenuation exponent per volt.
    pub subvt_alpha: f64,
    /// BTBT component weight (fraction of nominal leakage at 1 V-equivalent).
    pub btbt_weight: f64,
    /// BTBT growth exponent per volt.
    pub btbt_gamma: f64,
    /// Fractional delay increase per volt of reverse bias.
    pub slowdown_per_volt: f64,
    /// Maximum reverse bias the generator produces.
    pub max_bias: ReverseBiasVoltage,
}

impl RbbModel {
    /// A 45 nm-class calibration: ~2.4× leakage reduction at the optimum,
    /// with BTBT reclaiming the gains beyond ~0.5 V.
    pub fn date09_45nm() -> Self {
        RbbModel {
            subvt_alpha: 2.2,
            btbt_weight: 0.06,
            btbt_gamma: 2.4,
            slowdown_per_volt: 0.18,
            max_bias: ReverseBiasVoltage::from_millivolts(1000),
        }
    }

    /// Total leakage multiplier at reverse bias `v` (subthreshold decay plus
    /// the growing BTBT component).
    pub fn leakage_multiplier(&self, v: ReverseBiasVoltage) -> f64 {
        let vv = v.volts();
        (-self.subvt_alpha * vv).exp() + self.btbt_weight * ((self.btbt_gamma * vv).exp() - 1.0)
    }

    /// Delay multiplier at reverse bias `v` (`>= 1`).
    pub fn delay_factor(&self, v: ReverseBiasVoltage) -> f64 {
        1.0 + self.slowdown_per_volt * v.volts()
    }

    /// The reverse bias minimizing total leakage, scanned at the generator
    /// resolution (the classic [Neau & Roy, ISLPED'03] "optimal body bias").
    pub fn optimal_bias(&self, resolution_mv: u32) -> ReverseBiasVoltage {
        assert!(resolution_mv > 0, "resolution must be nonzero");
        let mut best = ReverseBiasVoltage::ZERO;
        let mut best_leak = self.leakage_multiplier(best);
        let mut mv = resolution_mv;
        while mv <= self.max_bias.millivolts() {
            let v = ReverseBiasVoltage::from_millivolts(mv);
            let leak = self.leakage_multiplier(v);
            if leak < best_leak {
                best_leak = leak;
                best = v;
            }
            mv += resolution_mv;
        }
        best
    }

    /// The largest reverse bias whose slowdown still fits within a timing
    /// slack fraction (e.g. a die measured 6 % fast can afford
    /// `slack_fraction = 0.06`), at the generator resolution.
    pub fn max_bias_within_slack(&self, slack_fraction: f64, resolution_mv: u32) -> ReverseBiasVoltage {
        assert!(resolution_mv > 0, "resolution must be nonzero");
        let mut best = ReverseBiasVoltage::ZERO;
        let mut mv = resolution_mv;
        while mv <= self.max_bias.millivolts() {
            let v = ReverseBiasVoltage::from_millivolts(mv);
            if self.delay_factor(v) <= 1.0 + slack_fraction {
                best = v;
            } else {
                break;
            }
            mv += resolution_mv;
        }
        best
    }
}

impl Default for RbbModel {
    fn default() -> Self {
        Self::date09_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> RbbModel {
        RbbModel::date09_45nm()
    }

    #[test]
    fn leakage_has_an_interior_optimum() {
        let model = m();
        let opt = model.optimal_bias(50);
        assert!(opt > ReverseBiasVoltage::ZERO, "some reverse bias helps");
        assert!(opt < model.max_bias, "BTBT reclaims the gains before max bias");
        // The optimum beats both endpoints.
        let at_opt = model.leakage_multiplier(opt);
        assert!(at_opt < 1.0);
        assert!(at_opt < model.leakage_multiplier(model.max_bias));
    }

    #[test]
    fn btbt_dominates_at_deep_reverse_bias() {
        // The paper's scaling argument: past the optimum, more RBB leaks MORE.
        let model = m();
        let opt = model.optimal_bias(50);
        let deeper = ReverseBiasVoltage::from_millivolts(opt.millivolts() + 300);
        assert!(model.leakage_multiplier(deeper) > model.leakage_multiplier(opt));
    }

    #[test]
    fn delay_penalty_is_monotone() {
        let model = m();
        let mut prev = 1.0;
        for mv in (100..=1000).step_by(100) {
            let f = model.delay_factor(ReverseBiasVoltage::from_millivolts(mv));
            assert!(f > prev);
            prev = f;
        }
    }

    #[test]
    fn slack_limited_bias_respects_timing() {
        let model = m();
        let v = model.max_bias_within_slack(0.05, 50);
        assert!(model.delay_factor(v) <= 1.05);
        // The next step would violate.
        let next = ReverseBiasVoltage::from_millivolts(v.millivolts() + 50);
        assert!(model.delay_factor(next) > 1.05);
    }

    #[test]
    fn zero_slack_means_no_bias() {
        assert_eq!(m().max_bias_within_slack(0.0, 50), ReverseBiasVoltage::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(ReverseBiasVoltage::from_millivolts(250).to_string(), "-250mV");
    }
}
