//! Nominal cell data and per-bias-level characterization tables.

use serde::{Deserialize, Serialize};

use crate::{BiasLadder, BodyBiasModel, Cell, CellKind, DeviceError, DriveStrength};

/// Nominal (no-body-bias, typical corner) data for one cell kind at X1 drive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellData {
    /// Propagation delay in picoseconds.
    pub delay_ps: f64,
    /// Subthreshold leakage power in nanowatts.
    pub leakage_nw: f64,
    /// Cell width in placement sites.
    pub width_sites: u32,
}

/// A standard-cell library: nominal delay/leakage/width per cell.
///
/// The paper uses a reduced 45 nm STMicroelectronics library. We provide an
/// equivalent synthetic library with typical 45 nm magnitudes; the FBB
/// allocator only depends on relative delays and the bias response shape.
///
/// ```
/// use fbb_device::{Cell, CellKind, DriveStrength, Library};
///
/// let lib = Library::date09_45nm();
/// let inv = Cell::new(CellKind::Inv, DriveStrength::X1);
/// let inv4 = Cell::new(CellKind::Inv, DriveStrength::X4);
/// assert!(lib.nbb_delay_ps(inv4) < lib.nbb_delay_ps(inv));
/// assert!(lib.nbb_leakage_nw(inv4) > lib.nbb_leakage_nw(inv));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Library {
    base: Vec<CellData>, // indexed by CellKind::index()
}

impl Library {
    /// A synthetic 45 nm library with magnitudes typical of the paper's setup.
    pub fn date09_45nm() -> Self {
        let mut base = vec![
            CellData { delay_ps: 0.0, leakage_nw: 0.0, width_sites: 0 };
            CellKind::ALL.len()
        ];
        let mut set = |k: CellKind, delay_ps: f64, leakage_nw: f64, width_sites: u32| {
            base[k.index()] = CellData { delay_ps, leakage_nw, width_sites };
        };
        set(CellKind::Inv, 12.0, 0.09, 2);
        set(CellKind::Buf, 20.0, 0.13, 3);
        set(CellKind::Nand2, 16.0, 0.16, 3);
        set(CellKind::Nand3, 20.0, 0.20, 4);
        set(CellKind::Nand4, 24.0, 0.27, 5);
        set(CellKind::Nor2, 18.0, 0.18, 3);
        set(CellKind::Nor3, 24.0, 0.25, 4);
        set(CellKind::And2, 22.0, 0.19, 4);
        set(CellKind::Or2, 24.0, 0.21, 4);
        set(CellKind::Xor2, 30.0, 0.28, 5);
        set(CellKind::Xnor2, 30.0, 0.28, 5);
        set(CellKind::Dff, 60.0, 0.55, 8);
        Library { base }
    }

    /// Nominal data of the X1 variant of `kind`.
    pub fn cell_data(&self, kind: CellKind) -> CellData {
        self.base[kind.index()]
    }

    /// The full nominal table, indexed by [`CellKind::index`], for
    /// serialization ([`Library::from_cell_table`] rebuilds from it).
    pub fn cell_table(&self) -> &[CellData] {
        &self.base
    }

    /// Rebuilds a library from a [`Library::cell_table`] snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidModel`] if the table does not cover
    /// exactly [`CellKind::ALL`] or contains non-finite / negative entries.
    pub fn from_cell_table(base: Vec<CellData>) -> Result<Self, DeviceError> {
        if base.len() != CellKind::ALL.len() {
            return Err(DeviceError::InvalidModel(format!(
                "cell table has {} entries, library defines {}",
                base.len(),
                CellKind::ALL.len()
            )));
        }
        for (i, data) in base.iter().enumerate() {
            let ok = data.delay_ps.is_finite()
                && data.delay_ps > 0.0
                && data.leakage_nw.is_finite()
                && data.leakage_nw > 0.0
                && data.width_sites > 0;
            if !ok {
                return Err(DeviceError::InvalidModel(format!(
                    "cell table entry {} ({}) is not physical",
                    i,
                    CellKind::ALL[i]
                )));
            }
        }
        Ok(Library { base })
    }

    /// Nominal (no body bias) delay of `cell` in picoseconds.
    pub fn nbb_delay_ps(&self, cell: Cell) -> f64 {
        self.base[cell.kind.index()].delay_ps * cell.drive.delay_factor()
    }

    /// Nominal (no body bias) leakage of `cell` in nanowatts.
    pub fn nbb_leakage_nw(&self, cell: Cell) -> f64 {
        self.base[cell.kind.index()].leakage_nw * cell.drive.leakage_factor()
    }

    /// Width of `cell` in placement sites.
    pub fn width_sites(&self, cell: Cell) -> u32 {
        let w = f64::from(self.base[cell.kind.index()].width_sites) * cell.drive.width_factor();
        w.ceil() as u32
    }

    /// Runs the "SPICE characterization" step of the paper's flow: tabulates
    /// delay and leakage of every library cell at every bias level.
    pub fn characterize(&self, model: &BodyBiasModel, ladder: &BiasLadder) -> Characterization {
        let levels = ladder.len();
        let cells = Cell::count();
        let mut delay = vec![0.0; cells * levels];
        let mut leakage = vec![0.0; cells * levels];
        for kind in CellKind::ALL {
            for drive in DriveStrength::ALL {
                let cell = Cell::new(kind, drive);
                let d0 = self.nbb_delay_ps(cell);
                let l0 = self.nbb_leakage_nw(cell);
                for (j, v) in ladder.iter() {
                    delay[cell.index() * levels + j] = d0 * model.delay_factor(v);
                    leakage[cell.index() * levels + j] = l0 * model.leakage_multiplier(v);
                }
            }
        }
        let speedup = ladder.iter().map(|(_, v)| model.speedup_fraction(v)).collect();
        Characterization {
            ladder: ladder.clone(),
            model: model.clone(),
            library: self.clone(),
            levels,
            delay,
            leakage,
            speedup,
        }
    }
}

impl Default for Library {
    fn default() -> Self {
        Self::date09_45nm()
    }
}

/// Per-bias-level delay and leakage tables for every library cell.
///
/// This is the artifact the paper builds in its pre-processing phase:
/// *"For each of the gates in the library, we characterized its delay
/// increase and average leakage power for different body bias voltages."*
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    ladder: BiasLadder,
    model: BodyBiasModel,
    library: Library,
    levels: usize,
    delay: Vec<f64>,   // [cell.index() * levels + level]
    leakage: Vec<f64>, // [cell.index() * levels + level]
    speedup: Vec<f64>, // [level]
}

impl Characterization {
    /// The bias ladder this table was built for.
    pub fn ladder(&self) -> &BiasLadder {
        &self.ladder
    }

    /// The body-bias model this table was built from.
    pub fn model(&self) -> &BodyBiasModel {
        &self.model
    }

    /// The nominal library this table was built from.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// Number of bias levels `P`.
    pub fn level_count(&self) -> usize {
        self.levels
    }

    /// Delay of `cell` at bias-ladder index `level`, in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.level_count()`.
    pub fn delay_ps(&self, cell: Cell, level: usize) -> f64 {
        assert!(level < self.levels, "bias level {level} out of range");
        self.delay[cell.index() * self.levels + level]
    }

    /// Leakage of `cell` at bias-ladder index `level`, in nanowatts.
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.level_count()`.
    pub fn leakage_nw(&self, cell: Cell, level: usize) -> f64 {
        assert!(level < self.levels, "bias level {level} out of range");
        self.leakage[cell.index() * self.levels + level]
    }

    /// Fractional delay reduction at ladder index `level` relative to NBB.
    pub fn speedup_fraction(&self, level: usize) -> f64 {
        self.speedup[level]
    }

    /// Absolute delay reduction of `cell` when moved from NBB to `level`, ps.
    pub fn delay_reduction_ps(&self, cell: Cell, level: usize) -> f64 {
        self.delay_ps(cell, 0) - self.delay_ps(cell, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BiasVoltage;

    fn chara() -> Characterization {
        Library::date09_45nm()
            .characterize(&BodyBiasModel::date09_45nm(), &BiasLadder::date09().unwrap())
    }

    #[test]
    fn characterization_level0_is_nominal() {
        let lib = Library::date09_45nm();
        let c = chara();
        for kind in CellKind::ALL {
            for drive in DriveStrength::ALL {
                let cell = Cell::new(kind, drive);
                assert!((c.delay_ps(cell, 0) - lib.nbb_delay_ps(cell)).abs() < 1e-12);
                assert!((c.leakage_nw(cell, 0) - lib.nbb_leakage_nw(cell)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn delay_monotonically_decreases_with_level() {
        let c = chara();
        for kind in CellKind::ALL {
            let cell = Cell::new(kind, DriveStrength::X1);
            for j in 1..c.level_count() {
                assert!(c.delay_ps(cell, j) < c.delay_ps(cell, j - 1));
            }
        }
    }

    #[test]
    fn leakage_monotonically_increases_with_level() {
        let c = chara();
        for kind in CellKind::ALL {
            let cell = Cell::new(kind, DriveStrength::X1);
            for j in 1..c.level_count() {
                assert!(c.leakage_nw(cell, j) > c.leakage_nw(cell, j - 1));
            }
        }
    }

    #[test]
    fn speedup_fraction_matches_model() {
        let c = chara();
        let m = BodyBiasModel::date09_45nm();
        assert_eq!(c.speedup_fraction(0), 0.0);
        let v = BiasVoltage::from_millivolts(500);
        assert!((c.speedup_fraction(10) - m.speedup_fraction(v)).abs() < 1e-12);
    }

    #[test]
    fn delay_reduction_is_consistent() {
        let c = chara();
        let cell = Cell::new(CellKind::Nand2, DriveStrength::X1);
        let red = c.delay_reduction_ps(cell, 10);
        assert!((red - (c.delay_ps(cell, 0) - c.delay_ps(cell, 10))).abs() < 1e-12);
        assert!(red > 0.0);
    }

    #[test]
    fn widths_grow_with_drive() {
        let lib = Library::date09_45nm();
        for kind in CellKind::ALL {
            let w1 = lib.width_sites(Cell::new(kind, DriveStrength::X1));
            let w4 = lib.width_sites(Cell::new(kind, DriveStrength::X4));
            assert!(w4 > w1, "{kind}: X4 width {w4} <= X1 width {w1}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_level_panics() {
        let c = chara();
        let _ = c.delay_ps(Cell::new(CellKind::Inv, DriveStrength::X1), 11);
    }
}
