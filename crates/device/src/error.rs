//! Error type for device-model construction.

use std::error::Error;
use std::fmt;

/// Errors produced while building device models or libraries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeviceError {
    /// The bias ladder specification is inconsistent.
    InvalidLadder(String),
    /// The body-bias model parameters are physically meaningless.
    InvalidModel(String),
    /// A cell or drive-strength name could not be resolved.
    UnknownCell(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidLadder(msg) => write!(f, "invalid bias ladder: {msg}"),
            DeviceError::InvalidModel(msg) => write!(f, "invalid body-bias model: {msg}"),
            DeviceError::UnknownCell(name) => write!(f, "unknown library cell {name}"),
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = DeviceError::UnknownCell("NAND9".into());
        assert_eq!(e.to_string(), "unknown library cell NAND9");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}
