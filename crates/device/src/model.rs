//! The analytic body-bias response model (paper Fig. 1).

use serde::{Deserialize, Serialize};

use crate::{BiasVoltage, DeviceError};

/// Analytic model of how forward body bias affects gate delay and leakage.
///
/// Calibrated against the paper's SPICE measurements of a 45 nm inverter
/// (Fig. 1): a **linear** speed-up reaching 21 % at `vbs = 0.95 V` and an
/// **exponential** leakage increase reaching 12.74× at `vbs = 0.95 V`.
/// The usable range is capped at 0.5 V, where the forward source–body
/// junction current starts to dominate (§3.2, citing Narendra et al.).
///
/// ```
/// use fbb_device::{BiasVoltage, BodyBiasModel};
///
/// let m = BodyBiasModel::date09_45nm();
/// let half = BiasVoltage::from_millivolts(500);
/// // ~11% faster and ~3.8x leakier at the maximum usable bias.
/// assert!((m.speedup_fraction(half) - 0.11).abs() < 0.01);
/// assert!((m.leakage_multiplier(half) - 3.8).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BodyBiasModel {
    /// Fractional delay reduction per volt of `vbs` (linear region slope).
    speedup_per_volt: f64,
    /// Exponent of the leakage growth: `L(v) = L0 · exp(alpha · v)`.
    leakage_alpha: f64,
    /// Supply voltage in volts (PMOS body sees `Vdd − vbs`).
    vdd: f64,
    /// Maximum bias the allocator may use before junction current dominates.
    usable_max: BiasVoltage,
    /// Knee voltage of the source–body junction diode.
    junction_knee: f64,
    /// Slope (per volt) of the exponential junction-current turn-on.
    junction_slope: f64,
}

impl BodyBiasModel {
    /// The paper's 45 nm calibration.
    ///
    /// Anchors: 21 % speed-up and 12.74× leakage at `vbs = 0.95 V`;
    /// usable range 0–0.5 V.
    pub fn date09_45nm() -> Self {
        BodyBiasModel {
            speedup_per_volt: 0.21 / 0.95,
            leakage_alpha: 12.74f64.ln() / 0.95,
            vdd: 0.95,
            usable_max: BiasVoltage::from_millivolts(500),
            junction_knee: 0.55,
            junction_slope: 25.0,
        }
    }

    /// Builds a custom model.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidModel`] if a full-range bias would drive
    /// the delay factor to zero or below (`speedup_per_volt · vdd >= 1`), or
    /// if any parameter is non-positive / non-finite.
    pub fn new(
        speedup_per_volt: f64,
        leakage_alpha: f64,
        vdd: f64,
        usable_max: BiasVoltage,
    ) -> Result<Self, DeviceError> {
        let finite_positive =
            |x: f64| x.is_finite() && x > 0.0;
        if !finite_positive(speedup_per_volt) || !finite_positive(leakage_alpha) || !finite_positive(vdd)
        {
            return Err(DeviceError::InvalidModel(
                "model parameters must be finite and positive".into(),
            ));
        }
        if speedup_per_volt * vdd >= 1.0 {
            return Err(DeviceError::InvalidModel(format!(
                "speed-up slope {speedup_per_volt}/V reaches 100% delay reduction within vdd={vdd}V"
            )));
        }
        if usable_max.volts() > vdd {
            return Err(DeviceError::InvalidModel(
                "usable bias range cannot exceed vdd".into(),
            ));
        }
        Ok(BodyBiasModel {
            speedup_per_volt,
            leakage_alpha,
            vdd,
            usable_max,
            junction_knee: usable_max.volts() + 0.05,
            junction_slope: 25.0,
        })
    }

    /// Supply voltage in volts.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// The maximum bias the allocator should distribute (0.5 V in the paper).
    pub fn usable_max(&self) -> BiasVoltage {
        self.usable_max
    }

    /// Whether `vbs` is inside the usable allocation range.
    pub fn is_usable(&self, vbs: BiasVoltage) -> bool {
        vbs <= self.usable_max
    }

    /// Fractional delay reduction at `vbs` (0.0 = no change, 0.21 = 21 % faster).
    pub fn speedup_fraction(&self, vbs: BiasVoltage) -> f64 {
        self.speedup_per_volt * vbs.volts()
    }

    /// Multiplier applied to nominal delay at `vbs` (`1 − speedup`).
    pub fn delay_factor(&self, vbs: BiasVoltage) -> f64 {
        1.0 - self.speedup_fraction(vbs)
    }

    /// Multiplier applied to nominal subthreshold leakage at `vbs`.
    pub fn leakage_multiplier(&self, vbs: BiasVoltage) -> f64 {
        (self.leakage_alpha * vbs.volts()).exp()
    }

    /// Additional current drawn by the forward-biased source–body junction,
    /// expressed as an equivalent leakage multiplier contribution.
    ///
    /// Negligible below the knee (~0.55 V), exponential above it. This is the
    /// effect that motivates the paper's 0.5 V cap; it matters for the Fig. 1
    /// sweep up to 0.95 V but never inside the usable range.
    pub fn junction_multiplier(&self, vbs: BiasVoltage) -> f64 {
        let v = vbs.volts();
        if v <= 0.0 {
            return 0.0;
        }
        (self.junction_slope * (v - self.junction_knee)).exp().min(1e6)
    }

    /// Total off-state current multiplier including junction conduction,
    /// as measured at the source terminal in the paper's SPICE setup.
    pub fn total_leakage_multiplier(&self, vbs: BiasVoltage) -> f64 {
        self.leakage_multiplier(vbs) + self.junction_multiplier(vbs)
    }

    /// The PMOS body voltage corresponding to `vbs` (`vbsp = Vdd − vbs`).
    pub fn pmos_body_volts(&self, vbs: BiasVoltage) -> f64 {
        self.vdd - vbs.volts()
    }

    /// The complete parameter set of this model, for serialization.
    ///
    /// [`BodyBiasModel::from_params`] rebuilds a bit-identical model from
    /// the returned value.
    pub fn params(&self) -> BodyBiasParams {
        BodyBiasParams {
            speedup_per_volt: self.speedup_per_volt,
            leakage_alpha: self.leakage_alpha,
            vdd: self.vdd,
            usable_max_mv: self.usable_max.millivolts(),
            junction_knee: self.junction_knee,
            junction_slope: self.junction_slope,
        }
    }

    /// Rebuilds a model from a [`BodyBiasModel::params`] snapshot.
    ///
    /// Unlike [`BodyBiasModel::new`], the junction parameters are restored
    /// verbatim rather than re-derived, so `from_params(m.params())` is
    /// bit-identical to `m`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidModel`] under the same rules as
    /// [`BodyBiasModel::new`], extended to the junction parameters.
    pub fn from_params(p: BodyBiasParams) -> Result<Self, DeviceError> {
        let usable_max = BiasVoltage::from_millivolts(p.usable_max_mv);
        let base = Self::new(p.speedup_per_volt, p.leakage_alpha, p.vdd, usable_max)?;
        let finite_positive = |x: f64| x.is_finite() && x > 0.0;
        if !finite_positive(p.junction_knee) || !finite_positive(p.junction_slope) {
            return Err(DeviceError::InvalidModel(
                "junction parameters must be finite and positive".into(),
            ));
        }
        Ok(BodyBiasModel {
            junction_knee: p.junction_knee,
            junction_slope: p.junction_slope,
            ..base
        })
    }
}

/// Raw parameter snapshot of a [`BodyBiasModel`] (see
/// [`BodyBiasModel::params`]); the unit of exchange for serialization
/// layers that persist a model and rebuild it bit-identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodyBiasParams {
    /// Fractional delay reduction per volt of `vbs`.
    pub speedup_per_volt: f64,
    /// Exponent of the leakage growth: `L(v) = L0 · exp(alpha · v)`.
    pub leakage_alpha: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Maximum usable bias in millivolts.
    pub usable_max_mv: u32,
    /// Knee voltage of the source–body junction diode.
    pub junction_knee: f64,
    /// Slope (per volt) of the exponential junction-current turn-on.
    pub junction_slope: f64,
}

impl Default for BodyBiasModel {
    fn default() -> Self {
        Self::date09_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> BodyBiasModel {
        BodyBiasModel::date09_45nm()
    }

    #[test]
    fn fig1_anchor_points() {
        let full = BiasVoltage::from_millivolts(950);
        assert!((m().speedup_fraction(full) - 0.21).abs() < 1e-12);
        assert!((m().leakage_multiplier(full) - 12.74).abs() < 1e-9);
    }

    #[test]
    fn delay_is_linear_in_vbs() {
        let model = m();
        let s1 = model.speedup_fraction(BiasVoltage::from_millivolts(100));
        let s2 = model.speedup_fraction(BiasVoltage::from_millivolts(200));
        let s4 = model.speedup_fraction(BiasVoltage::from_millivolts(400));
        assert!((s2 - 2.0 * s1).abs() < 1e-12);
        assert!((s4 - 4.0 * s1).abs() < 1e-12);
    }

    #[test]
    fn leakage_is_exponential_in_vbs() {
        let model = m();
        let l1 = model.leakage_multiplier(BiasVoltage::from_millivolts(100));
        let l2 = model.leakage_multiplier(BiasVoltage::from_millivolts(200));
        // exp(2x) == exp(x)^2
        assert!((l2 - l1 * l1).abs() < 1e-9);
    }

    #[test]
    fn nbb_is_identity() {
        let model = m();
        assert_eq!(model.speedup_fraction(BiasVoltage::ZERO), 0.0);
        assert_eq!(model.delay_factor(BiasVoltage::ZERO), 1.0);
        assert_eq!(model.leakage_multiplier(BiasVoltage::ZERO), 1.0);
    }

    #[test]
    fn junction_current_negligible_in_usable_range() {
        let model = m();
        assert!(model.junction_multiplier(BiasVoltage::from_millivolts(500)) < 0.3);
        // ... but dominates near vdd, motivating the 0.5 V cap.
        assert!(model.junction_multiplier(BiasVoltage::from_millivolts(950)) > 100.0);
    }

    #[test]
    fn usable_range_matches_paper() {
        let model = m();
        assert!(model.is_usable(BiasVoltage::from_millivolts(500)));
        assert!(!model.is_usable(BiasVoltage::from_millivolts(550)));
    }

    #[test]
    fn constructor_validates() {
        assert!(BodyBiasModel::new(2.0, 2.5, 0.95, BiasVoltage::from_millivolts(500)).is_err());
        assert!(BodyBiasModel::new(0.2, -1.0, 0.95, BiasVoltage::from_millivolts(500)).is_err());
        assert!(BodyBiasModel::new(0.2, 2.5, 0.95, BiasVoltage::from_millivolts(1500)).is_err());
        assert!(BodyBiasModel::new(0.2, 2.5, 0.95, BiasVoltage::from_millivolts(500)).is_ok());
    }

    #[test]
    fn pmos_body_is_vdd_minus_vbs() {
        let model = m();
        assert!((model.pmos_body_volts(BiasVoltage::from_millivolts(300)) - 0.65).abs() < 1e-12);
    }
}
