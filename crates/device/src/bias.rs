//! Body-bias voltages and the quantized ladder a bias generator can produce.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::DeviceError;

/// A body-bias voltage, quantized to millivolts.
///
/// Following the paper's convention (§3.2), a single value `vbs` describes
/// both wells: the NMOS body sees `vbsn = vbs` and the PMOS body sees
/// `vbsp = Vdd − vbs`. `vbs = 0` means **no body bias** (NBB).
///
/// ```
/// use fbb_device::BiasVoltage;
///
/// let v = BiasVoltage::from_millivolts(250);
/// assert_eq!(v.millivolts(), 250);
/// assert!((v.volts() - 0.25).abs() < 1e-12);
/// assert!(BiasVoltage::ZERO < v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct BiasVoltage(u32);

impl BiasVoltage {
    /// No body bias (NBB): `vbs = 0`.
    pub const ZERO: BiasVoltage = BiasVoltage(0);

    /// Creates a bias voltage from a value in millivolts.
    pub const fn from_millivolts(mv: u32) -> Self {
        BiasVoltage(mv)
    }

    /// The voltage in millivolts.
    pub const fn millivolts(self) -> u32 {
        self.0
    }

    /// The voltage in volts.
    pub fn volts(self) -> f64 {
        f64::from(self.0) * 1e-3
    }

    /// Whether this is the no-body-bias level.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for BiasVoltage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}mV", self.0)
    }
}

/// The ordered set of bias voltages a body-bias generator can distribute.
///
/// The paper assumes a generator with 50 mV resolution and a usable range of
/// 0–0.5 V, i.e. `P = 11` levels (§3.2). Level index `0` is always NBB
/// (`vbs = 0`), and indices increase with voltage, hence with speed-up and
/// leakage.
///
/// ```
/// use fbb_device::{BiasLadder, BiasVoltage};
///
/// # fn main() -> Result<(), fbb_device::DeviceError> {
/// let ladder = BiasLadder::date09()?;
/// assert_eq!(ladder.len(), 11);
/// assert_eq!(ladder.level(0), BiasVoltage::ZERO);
/// assert_eq!(ladder.level(10), BiasVoltage::from_millivolts(500));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BiasLadder {
    levels: Vec<BiasVoltage>,
}

impl BiasLadder {
    /// The ladder used throughout the paper: 0 → 500 mV in 50 mV steps.
    ///
    /// # Errors
    ///
    /// Never fails for these built-in parameters; the `Result` mirrors
    /// [`BiasLadder::with_resolution`].
    pub fn date09() -> Result<Self, DeviceError> {
        Self::with_resolution(50, 500)
    }

    /// Builds a ladder from `0` to `max_mv` inclusive in steps of
    /// `resolution_mv` (the generator resolution; [Tschanz et al., JSSC'02]
    /// achieved 32 mV, the paper assumes 50 mV).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidLadder`] if the resolution is zero or
    /// does not divide `max_mv`.
    pub fn with_resolution(resolution_mv: u32, max_mv: u32) -> Result<Self, DeviceError> {
        if resolution_mv == 0 {
            return Err(DeviceError::InvalidLadder(
                "bias generator resolution must be nonzero".into(),
            ));
        }
        if !max_mv.is_multiple_of(resolution_mv) {
            return Err(DeviceError::InvalidLadder(format!(
                "resolution {resolution_mv} mV does not divide the maximum bias {max_mv} mV"
            )));
        }
        let levels = (0..=max_mv / resolution_mv)
            .map(|i| BiasVoltage::from_millivolts(i * resolution_mv))
            .collect();
        Ok(BiasLadder { levels })
    }

    /// Builds a ladder from an explicit, strictly increasing list of levels
    /// starting at 0 mV.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidLadder`] if the list is empty, does not
    /// start at 0 mV, or is not strictly increasing.
    pub fn from_levels(levels: Vec<BiasVoltage>) -> Result<Self, DeviceError> {
        if levels.is_empty() {
            return Err(DeviceError::InvalidLadder("ladder has no levels".into()));
        }
        if levels[0] != BiasVoltage::ZERO {
            return Err(DeviceError::InvalidLadder(
                "ladder must start at the no-body-bias level (0 mV)".into(),
            ));
        }
        if levels.windows(2).any(|w| w[0] >= w[1]) {
            return Err(DeviceError::InvalidLadder(
                "ladder levels must be strictly increasing".into(),
            ));
        }
        Ok(BiasLadder { levels })
    }

    /// Number of levels `P` (the paper's number of candidate clusters).
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the ladder has no levels. Always `false` for a constructed
    /// ladder, provided for `len`/`is_empty` symmetry.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The voltage at `index` (0 = NBB).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn level(&self, index: usize) -> BiasVoltage {
        self.levels[index]
    }

    /// The voltage at `index`, or `None` when out of range.
    pub fn get(&self, index: usize) -> Option<BiasVoltage> {
        self.levels.get(index).copied()
    }

    /// All levels in ascending order.
    pub fn levels(&self) -> &[BiasVoltage] {
        &self.levels
    }

    /// The highest voltage the generator can produce.
    pub fn max(&self) -> BiasVoltage {
        *self.levels.last().expect("ladder is never empty")
    }

    /// Index of the given voltage, if it is exactly on the ladder.
    pub fn index_of(&self, v: BiasVoltage) -> Option<usize> {
        self.levels.binary_search(&v).ok()
    }

    /// Iterates over `(index, voltage)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, BiasVoltage)> + '_ {
        self.levels.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date09_ladder_matches_paper() {
        let l = BiasLadder::date09().unwrap();
        assert_eq!(l.len(), 11);
        assert_eq!(l.level(0), BiasVoltage::ZERO);
        assert_eq!(l.level(5), BiasVoltage::from_millivolts(250));
        assert_eq!(l.max(), BiasVoltage::from_millivolts(500));
    }

    #[test]
    fn ladder_rejects_zero_resolution() {
        assert!(matches!(
            BiasLadder::with_resolution(0, 500),
            Err(DeviceError::InvalidLadder(_))
        ));
    }

    #[test]
    fn ladder_rejects_nondividing_resolution() {
        assert!(BiasLadder::with_resolution(32, 500).is_err());
        assert!(BiasLadder::with_resolution(32, 512).is_ok());
    }

    #[test]
    fn explicit_ladder_validation() {
        let ok = BiasLadder::from_levels(vec![
            BiasVoltage::ZERO,
            BiasVoltage::from_millivolts(100),
            BiasVoltage::from_millivolts(300),
        ]);
        assert_eq!(ok.unwrap().len(), 3);

        assert!(BiasLadder::from_levels(vec![]).is_err());
        assert!(BiasLadder::from_levels(vec![BiasVoltage::from_millivolts(50)]).is_err());
        assert!(BiasLadder::from_levels(vec![BiasVoltage::ZERO, BiasVoltage::ZERO]).is_err());
    }

    #[test]
    fn index_of_roundtrips() {
        let l = BiasLadder::date09().unwrap();
        for (i, v) in l.iter() {
            assert_eq!(l.index_of(v), Some(i));
        }
        assert_eq!(l.index_of(BiasVoltage::from_millivolts(42)), None);
    }

    #[test]
    fn voltage_display_and_units() {
        let v = BiasVoltage::from_millivolts(450);
        assert_eq!(v.to_string(), "450mV");
        assert!((v.volts() - 0.45).abs() < 1e-12);
        assert!(!v.is_zero());
        assert!(BiasVoltage::ZERO.is_zero());
    }
}
