//! The reduced standard-cell library of the paper's experimental setup.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::DeviceError;

/// Logic function of a standard cell.
///
/// The paper synthesizes its benchmarks with "a reduced library of gates
/// consisting of inverters, and, or, nor, nand and D-flip-flops of different
/// drive strength" (§5). We add buffers and XOR/XNOR, which the arithmetic
/// generators use; they behave identically under body bias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 4-input NAND.
    Nand4,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// Positive-edge D flip-flop.
    Dff,
}

impl CellKind {
    /// All cell kinds, in a stable order (useful for table indexing).
    pub const ALL: [CellKind; 12] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nand4,
        CellKind::Nor2,
        CellKind::Nor3,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Dff,
    ];

    /// Number of logic data inputs (the DFF counts its D pin only; clock is
    /// implicit).
    pub const fn input_count(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf | CellKind::Dff => 1,
            CellKind::Nand2
            | CellKind::Nor2
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::Nand3 | CellKind::Nor3 => 3,
            CellKind::Nand4 => 4,
        }
    }

    /// Whether this cell is a sequential element (a timing start/end point).
    pub const fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff)
    }

    /// Dense index into [`CellKind::ALL`] (the discriminant; `ALL` lists the
    /// variants in declaration order, which `all_matches_declaration_order`
    /// pins down).
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Canonical upper-case name, as used by the netlist text format.
    pub const fn name(self) -> &'static str {
        match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nand3 => "NAND3",
            CellKind::Nand4 => "NAND4",
            CellKind::Nor2 => "NOR2",
            CellKind::Nor3 => "NOR3",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Dff => "DFF",
        }
    }

    /// Evaluates the cell's boolean function (combinational kinds only).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.input_count()` or if called on a
    /// [`CellKind::Dff`], whose output is state, not a function of inputs.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "{} expects {} inputs",
            self.name(),
            self.input_count()
        );
        match self {
            CellKind::Inv => !inputs[0],
            CellKind::Buf => inputs[0],
            CellKind::Nand2 | CellKind::Nand3 | CellKind::Nand4 => !inputs.iter().all(|&b| b),
            CellKind::Nor2 | CellKind::Nor3 => !inputs.iter().any(|&b| b),
            CellKind::And2 => inputs.iter().all(|&b| b),
            CellKind::Or2 => inputs.iter().any(|&b| b),
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Dff => panic!("DFF output is sequential state, not a boolean function"),
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for CellKind {
    type Err = DeviceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CellKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == s)
            .ok_or_else(|| DeviceError::UnknownCell(s.to_owned()))
    }
}

/// Drive strength variant of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub enum DriveStrength {
    /// Unit drive.
    #[default]
    X1,
    /// Double drive: faster, leakier, wider.
    X2,
    /// Quadruple drive.
    X4,
}

impl DriveStrength {
    /// All drive strengths in ascending order.
    pub const ALL: [DriveStrength; 3] = [DriveStrength::X1, DriveStrength::X2, DriveStrength::X4];

    /// Dense index into [`DriveStrength::ALL`].
    pub const fn index(self) -> usize {
        match self {
            DriveStrength::X1 => 0,
            DriveStrength::X2 => 1,
            DriveStrength::X4 => 2,
        }
    }

    /// Multiplier on nominal delay (larger drives are faster into the same load).
    pub const fn delay_factor(self) -> f64 {
        match self {
            DriveStrength::X1 => 1.0,
            DriveStrength::X2 => 0.85,
            DriveStrength::X4 => 0.72,
        }
    }

    /// Multiplier on nominal leakage (wider devices leak more).
    pub const fn leakage_factor(self) -> f64 {
        match self {
            DriveStrength::X1 => 1.0,
            DriveStrength::X2 => 1.9,
            DriveStrength::X4 => 3.6,
        }
    }

    /// Multiplier on nominal cell width.
    pub const fn width_factor(self) -> f64 {
        match self {
            DriveStrength::X1 => 1.0,
            DriveStrength::X2 => 1.5,
            DriveStrength::X4 => 2.5,
        }
    }

    /// Canonical name (`X1`, `X2`, `X4`).
    pub const fn name(self) -> &'static str {
        match self {
            DriveStrength::X1 => "X1",
            DriveStrength::X2 => "X2",
            DriveStrength::X4 => "X4",
        }
    }
}

impl fmt::Display for DriveStrength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for DriveStrength {
    type Err = DeviceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DriveStrength::ALL
            .iter()
            .copied()
            .find(|d| d.name() == s)
            .ok_or_else(|| DeviceError::UnknownCell(format!("drive strength {s}")))
    }
}

/// A concrete library cell: a logic function at a drive strength.
///
/// ```
/// use fbb_device::{Cell, CellKind, DriveStrength};
///
/// let c = Cell::new(CellKind::Nand2, DriveStrength::X2);
/// assert_eq!(c.to_string(), "NAND2_X2");
/// assert_eq!(c.kind.input_count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Cell {
    /// Logic function.
    pub kind: CellKind,
    /// Drive strength.
    pub drive: DriveStrength,
}

impl Cell {
    /// Creates a cell reference.
    pub const fn new(kind: CellKind, drive: DriveStrength) -> Self {
        Cell { kind, drive }
    }

    /// Dense index over all `(kind, drive)` pairs.
    pub fn index(self) -> usize {
        self.kind.index() * DriveStrength::ALL.len() + self.drive.index()
    }

    /// Total number of distinct cells in the library.
    pub const fn count() -> usize {
        CellKind::ALL.len() * DriveStrength::ALL.len()
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_{}", self.kind, self.drive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        for k in CellKind::ALL {
            assert_eq!(k.name().parse::<CellKind>().unwrap(), k);
        }
        assert!("FOO".parse::<CellKind>().is_err());
    }

    #[test]
    fn drive_names_roundtrip() {
        for d in DriveStrength::ALL {
            assert_eq!(d.name().parse::<DriveStrength>().unwrap(), d);
        }
        assert!("X8".parse::<DriveStrength>().is_err());
    }

    #[test]
    fn input_counts() {
        assert_eq!(CellKind::Inv.input_count(), 1);
        assert_eq!(CellKind::Nand2.input_count(), 2);
        assert_eq!(CellKind::Nand3.input_count(), 3);
        assert_eq!(CellKind::Nand4.input_count(), 4);
        assert_eq!(CellKind::Dff.input_count(), 1);
    }

    #[test]
    fn boolean_functions() {
        assert!(CellKind::Inv.eval(&[false]));
        assert!(!CellKind::Nand2.eval(&[true, true]));
        assert!(CellKind::Nand2.eval(&[true, false]));
        assert!(CellKind::Nor2.eval(&[false, false]));
        assert!(!CellKind::Nor3.eval(&[false, true, false]));
        assert!(CellKind::Xor2.eval(&[true, false]));
        assert!(CellKind::Xnor2.eval(&[true, true]));
        assert!(CellKind::And2.eval(&[true, true]));
        assert!(CellKind::Or2.eval(&[false, true]));
        assert!(CellKind::Buf.eval(&[true]));
    }

    #[test]
    #[should_panic(expected = "sequential state")]
    fn dff_eval_panics() {
        let _ = CellKind::Dff.eval(&[true]);
    }

    #[test]
    fn all_matches_declaration_order() {
        // `CellKind::index` is the discriminant, so `ALL` must list the
        // variants in declaration order for table lookups to line up.
        for (i, k) in CellKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i, "ALL[{i}] = {k:?} is out of declaration order");
        }
    }

    #[test]
    fn cell_indices_are_dense_and_unique() {
        let mut seen = vec![false; Cell::count()];
        for k in CellKind::ALL {
            for d in DriveStrength::ALL {
                let i = Cell::new(k, d).index();
                assert!(!seen[i], "duplicate index {i}");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bigger_drives_are_faster_and_leakier() {
        let mut prev_delay = f64::INFINITY;
        let mut prev_leak = 0.0;
        for d in DriveStrength::ALL {
            assert!(d.delay_factor() < prev_delay);
            assert!(d.leakage_factor() > prev_leak);
            prev_delay = d.delay_factor();
            prev_leak = d.leakage_factor();
        }
    }

    #[test]
    fn only_dff_is_sequential() {
        for k in CellKind::ALL {
            assert_eq!(k.is_sequential(), k == CellKind::Dff);
        }
    }
}
