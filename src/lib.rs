//! Facade crate re-exporting the clustered-FBB workspace.
//!
//! See the workspace README for the full architecture. The sub-crates:
//!
//! * [`device`] — body-bias physics and cell library characterization
//! * [`netlist`] — netlist data structures and benchmark generators
//! * [`placement`] — row-based placement and FBB layout modelling
//! * [`sta`] — static timing analysis and path extraction
//! * [`lp`] — LP/MILP solver
//! * [`variation`] — process variation, temperature, and aging models
//! * [`core`] — the paper's clustered-FBB allocation algorithms
//! * [`telemetry`] — opt-in counters, distributions, and span timers
//! * [`db`] — versioned binary design database (`fbb compile`, `.fbb` files)
//! * [`serve`] — allocation daemon with a design cache (`fbb serve`)
//! * [`testkit`] — independent oracles, differential harness, fault injection
//! * [`audit`] — repo-invariant lint engine (`fbb lint`) and fixtures
//! * [`mod@bench`] — experiment harness (design preparation, Table 1 runs)

#![forbid(unsafe_code)]

pub use fbb_audit as audit;
pub use fbb_bench as bench;
pub use fbb_core as core;
pub use fbb_db as db;
pub use fbb_device as device;
pub use fbb_lp as lp;
pub use fbb_netlist as netlist;
pub use fbb_placement as placement;
pub use fbb_serve as serve;
pub use fbb_sta as sta;
pub use fbb_telemetry as telemetry;
pub use fbb_testkit as testkit;
pub use fbb_variation as variation;
