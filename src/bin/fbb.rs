//! `fbb` — command-line front end for the clustered-FBB flow.
//!
//! ```text
//! fbb generate --design c1355 --out c1355.bench        # emit a suite circuit
//! fbb compile --design c1355 -o c1355.fbb              # persist the pre-LP pipeline
//! fbb sta --netlist c1355.bench                        # timing report
//! fbb solve --netlist c1355.fbb --beta 0.05 --clusters 3 --ilp --layout
//! fbb difftest --cases 256 --seed 1                    # cross-engine differential soak
//! fbb difftest --db c1355.fbb                          # oracle-check a compiled design
//! ```
//!
//! Netlist files ending in `.bench` use the ISCAS format; anything else uses
//! the native text format (`fbb::netlist::fmt`). `sta` and `solve` also
//! accept a compiled `.fbb` design database (detected by magic, not
//! extension — see `docs/FORMAT.md`); the placement, characterization, and
//! pre-processed problem are then loaded instead of recomputed, skipping
//! straight to the LP.
//!
//! Exit codes are a machine-readable contract:
//!
//! * `0` — success (and, with `--require-optimal`, a proven optimum);
//! * `1` — usage error or internal failure;
//! * `2` — the instance is infeasible (uncompensable β);
//! * `3` — a time/node budget expired without an optimality proof;
//! * `4` — `difftest` found at least one engine/oracle mismatch;
//! * `5` — `lint` found repo-invariant violations or model-audit errors.

use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use fbb::core::{
    check_timing, single_bb, FbbError, FbbProblem, Granularity, IlpAllocator, Preprocessed,
    TwoPassHeuristic,
};
use fbb::bench::report::BenchReport;
use fbb::db::{is_design_db, DesignDb};
use fbb::device::{BiasLadder, BodyBiasModel, Characterization, Library};
use fbb::lp::deadline::Stopwatch;
use fbb::serve::{Client, ServeConfig, Server, SolveRequest};
use fbb::netlist::{bench_fmt, fmt as nl_fmt, suite, GateId, Netlist};
use fbb::placement::layout::{self, LayoutOptions};
use fbb::placement::{Placement, Placer, PlacerOptions};
use fbb::sta::{IncrementalSta, RowMap, TimingGraph};
use fbb::variation::{MonteCarloYield, ProcessVariation};

/// CLI outcome classes, each with a stable exit code (see the module docs).
#[derive(Debug)]
enum CliError {
    /// Bad invocation or an internal error — exit 1.
    Failure(String),
    /// The allocation problem has no solution — exit 2.
    Infeasible(String),
    /// A solver budget expired without the requested proof — exit 3.
    BudgetExpired(String),
    /// The differential harness found engine/oracle disagreement — exit 4.
    Mismatch(String),
    /// The static-analysis pass found violations — exit 5.
    LintViolations(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Failure(_) => 1,
            CliError::Infeasible(_) => 2,
            CliError::BudgetExpired(_) => 3,
            CliError::Mismatch(_) => 4,
            CliError::LintViolations(_) => 5,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Failure(m)
            | CliError::Infeasible(m)
            | CliError::BudgetExpired(m)
            | CliError::Mismatch(m)
            | CliError::LintViolations(m) => m,
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Failure(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Failure(msg.to_owned())
    }
}

/// Classifies an allocation error: uncompensable β is a property of the
/// instance (exit 2, with the engine's worst-path diagnosis), everything
/// else is an internal failure (exit 1).
fn classify_fbb_error(e: FbbError) -> CliError {
    match e {
        FbbError::Uncompensable { .. } => CliError::Infeasible(format!("infeasible: {e}")),
        other => CliError::Failure(other.to_string()),
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn arg_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn load_netlist(path: &str) -> Result<Netlist, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".bench") {
        bench_fmt::from_bench_str(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        nl_fmt::from_str(&text).map_err(|e| format!("{path}: {e}"))
    }
}

/// A design ready to solve: either built cold from a text netlist (parse →
/// place → characterize) or loaded from a compiled `.fbb` database, in
/// which case the stored pre-processed problems are available too.
struct LoadedDesign {
    netlist: Netlist,
    placement: Placement,
    chara: Characterization,
    db: Option<DesignDb>,
}

/// The single normalized error path for reading a design file. Every
/// filesystem failure — missing file, permission denied, path names a
/// directory — maps to exit 1 with one message shape, so scripts can match
/// on `cannot load design` regardless of which subcommand tripped it.
fn read_design_bytes(path: &str) -> Result<Vec<u8>, CliError> {
    std::fs::read(path)
        .map_err(|e| CliError::Failure(format!("cannot load design {path}: {e}")))
}

/// Loads `path` as either a compiled design database (sniffed by magic) or
/// a text netlist that still needs the cold pipeline. `--rows` only applies
/// to the cold path — a database carries its placement.
///
/// Databases decode through the CRC-trusting fast path: `solve`/`sta` are
/// warm-path consumers and the container checksums already gate
/// corruption. `difftest --db` — the integrity oracle — is the one caller
/// that keeps the fully verified decode.
fn load_design(args: &[String], path: &str) -> Result<LoadedDesign, CliError> {
    let bytes = read_design_bytes(path)?;
    if is_design_db(&bytes) {
        let db = DesignDb::decode_fast(&bytes)
            .map_err(|e| format!("cannot load design {path}: {e}"))?;
        if arg_value(args, "--rows").is_some() {
            eprintln!("note: --rows ignored ({path} is a compiled database with a stored placement)");
        }
        return Ok(LoadedDesign {
            netlist: db.netlist.clone(),
            placement: db.placement.clone(),
            chara: db.characterization.clone(),
            db: Some(db),
        });
    }
    let text =
        String::from_utf8(bytes).map_err(|_| format!("{path}: neither a design database nor text"))?;
    let netlist = if path.ends_with(".bench") {
        bench_fmt::from_bench_str(&text).map_err(|e| format!("{path}: {e}"))?
    } else {
        nl_fmt::from_str(&text).map_err(|e| format!("{path}: {e}"))?
    };
    let library = Library::date09_45nm();
    let mut options = PlacerOptions::default();
    if let Some(rows) = arg_value(args, "--rows").and_then(|v| v.parse().ok()) {
        options.target_rows = Some(rows);
    }
    let placement =
        Placer::new(options).place(&netlist, &library).map_err(|e| e.to_string())?;
    let chara = library.characterize(
        &BodyBiasModel::date09_45nm(),
        &BiasLadder::date09().map_err(|e| e.to_string())?,
    );
    Ok(LoadedDesign { netlist, placement, chara, db: None })
}

fn save_netlist(nl: &Netlist, path: &str) -> Result<(), String> {
    let text = if path.ends_with(".bench") {
        bench_fmt::to_bench_string(nl)
    } else {
        nl_fmt::to_string(nl)
    };
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

fn usage() -> &'static str {
    "usage:\n  \
     fbb generate --design <table1-name|adder:W|multiplier:W|alu:W> [--out FILE]\n  \
     fbb compile (--design NAME | --netlist FILE) -o FILE.fbb [--rows N]\n            \
     [--betas 0.05,0.10] [--clusters 3] [--granularity row,block,gate]\n  \
     fbb sta --netlist FILE [--beta 0.05]\n  \
     fbb solve --netlist FILE [--rows N] [--beta 0.05] [--clusters 3]\n            \
     [--ilp] [--ilp-time-limit SECS] [--require-optimal]\n            \
     [--layout] [--cleanup PCT] [--mc SAMPLES]\n  \
     fbb serve [--addr 127.0.0.1:7117] [--workers N] [--cache-designs N]\n            \
     [--queue-depth N]\n  \
     fbb sweep (--design NAME | --netlist FILE | --compose GATES) [--rows N]\n            \
     [--betas 0.03,0.05] [--clusters 2,3] [--levels 6,11]\n            \
     [--node-limit N] [--time-limit SECS] [--cold] [--report FILE]\n  \
     fbb bench-serve (--design NAME | --netlist FILE.fbb) [--addr HOST:PORT]\n            \
     [--connections 4] [--requests 64] [--beta 0.05] [--clusters 3]\n  \
     fbb difftest [--cases 64] [--seed 0] [--gap-limit 0.6] [--db FILE.fbb]\n  \
     fbb lint [--json] [--deep] [--fixtures] [--models] [--designs a,b] [--root DIR]\n  \
     fbb lint (--list-rules | --explain RULE)\n\n\
     `fbb serve` runs the allocation daemon (protocol: docs/PROTOCOL.md):\n\
     clients load a compiled design once into the in-memory cache, then\n\
     solve against it repeatedly. Response codes reuse the exit codes\n\
     below (0 ok, 1 error, 2 infeasible, 3 budget expired). SIGTERM or\n\
     the SHUTDOWN opcode drains queued work before exiting.\n\
     `fbb bench-serve` drives a daemon (spawning an in-process one unless\n\
     --addr is given) and merges latency percentiles plus the cache\n\
     hit/miss split into BENCH_serve.json.\n\n\
     `fbb sweep` runs the full beta x clusters x levels grid as one warm\n\
     pipeline (one pre-process per beta, one ILP model per beta/levels,\n\
     budget RHS patched per clusters), streaming one line per cell;\n\
     --cold solves every cell from scratch instead. Results are\n\
     bit-identical either way. --compose GATES tiles the hierarchical\n\
     suite-block composer up to the requested gate count (50k-500k) and\n\
     places it with the row tiler (--rows, default 64). --node-limit\n\
     bounds each cell deterministically; --time-limit also bounds it but\n\
     makes warm-vs-cold comparison timing-dependent. A sweep that\n\
     completes every cell exits 0 even if individual cells are\n\
     infeasible or budget-expired (per-cell status is in the output).\n\n\
     `fbb compile` runs generate -> place -> characterize -> STA -> path\n\
     extraction once and persists every artifact to a versioned binary\n\
     design database (docs/FORMAT.md). sta/solve/difftest accept the .fbb\n\
     file wherever a netlist is expected and skip straight to the LP.\n\n\
     Any command also accepts --telemetry FILE: solver/STA/Monte-Carlo\n\
     counters are collected during the run, written to FILE as flat JSON,\n\
     and summarized on stderr.\n\n\
     Exit codes: 0 ok, 1 usage/internal error, 2 infeasible instance,\n\
     3 budget expired without an optimality proof (--require-optimal),\n\
     4 difftest mismatch, 5 lint/model-audit violations.\n\n\
     *.bench files use the ISCAS format; others use the native format."
}

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_path = arg_value(&args, "--telemetry");
    if telemetry_path.is_some() {
        fbb::telemetry::reset();
        fbb::telemetry::enable();
    }
    let result = match args.first().map(String::as_str) {
        Some("generate") => generate(&args).map_err(CliError::from),
        Some("compile") => compile(&args),
        Some("sta") => sta(&args),
        Some("solve") => solve(&args),
        Some("serve") => serve(&args),
        Some("sweep") => sweep(&args),
        Some("bench-serve") => bench_serve(&args),
        Some("difftest") => difftest(&args),
        Some("lint") => lint(&args),
        _ => Err(CliError::Failure(usage().to_owned())),
    };
    if let Some(path) = telemetry_path {
        let snap = fbb::telemetry::snapshot();
        snap.save_flat_json(Path::new(&path))
            .map_err(|e| CliError::Failure(format!("cannot write telemetry to {path}: {e}")))?;
        eprintln!("\n{}", snap.summary());
        eprintln!("telemetry written to {path}");
    }
    result
}

/// `fbb difftest` — run the cross-engine differential harness.
///
/// Per-layer mismatch totals land in telemetry (`difftest_*`); any mismatch
/// exits with code 4. The hidden `--inject-pivot-bug` and
/// `--inject-postsolve-bug` flags arm the `fault-inject` planted defects
/// (a flipped simplex pivot sign, a transposed postsolve column pair) for
/// the duration of the run — they exist so scripts (and `scripts/check.sh`)
/// can prove the harness detects a real solver bug, and an armed run must
/// therefore *fail*.
fn difftest(args: &[String]) -> Result<(), CliError> {
    if let Some(path) = arg_value(args, "--db") {
        return difftest_db(&path, args);
    }
    let cases: usize = arg_value(args, "--cases").and_then(|v| v.parse().ok()).unwrap_or(64);
    let seed: u64 = arg_value(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(0);
    let gap_limit: f64 =
        arg_value(args, "--gap-limit").and_then(|v| v.parse().ok()).unwrap_or(0.6);
    let config = fbb::testkit::DiffConfig {
        cases,
        seed,
        greedy_gap_limit: gap_limit,
        ..fbb::testkit::DiffConfig::default()
    };
    let runner = fbb::testkit::DiffRunner::with_config(config);
    let report = if arg_flag(args, "--inject-pivot-bug") {
        eprintln!("warning: pivot-sign defect armed; this run must report mismatches");
        fbb::lp::fault::with_flipped_pivot_sign(|| runner.run())
    } else if arg_flag(args, "--inject-postsolve-bug") {
        eprintln!("warning: postsolve-swap defect armed; this run must report mismatches");
        fbb::lp::fault::with_swapped_postsolve_entries(|| runner.run())
    } else {
        runner.run()
    };
    println!("{}", report.summary());
    if report.is_clean() {
        Ok(())
    } else {
        for failure in &report.failures {
            eprintln!("mismatch: {failure}");
        }
        if report.total_mismatches() > report.failures.len() {
            eprintln!(
                "… and {} more (see telemetry difftest_* counters)",
                report.total_mismatches() - report.failures.len()
            );
        }
        Err(CliError::Mismatch(format!(
            "difftest: {} mismatches over {} cases/layer (seed {seed})",
            report.total_mismatches(),
            cases
        )))
    }
}

/// `fbb difftest --db FILE.fbb` — oracle-check every pre-processed instance
/// stored in a compiled design database.
///
/// Per entry: the heuristic's assignment must pass the independent timing
/// oracle, its reported leakage must match a from-scratch recomputation
/// bit-for-bit, and its cluster usage must respect the stored budget. With
/// `--ilp`, the exact solver additionally must not be beaten by the
/// heuristic whenever it proves optimality. Any disagreement exits 4, same
/// as the random-case harness.
fn difftest_db(path: &str, args: &[String]) -> Result<(), CliError> {
    let bytes = read_design_bytes(path)?;
    // The oracle run keeps the fully verified decode on purpose: difftest
    // exists to catch corruption, so it must not trust the CRCs alone.
    let db = DesignDb::decode_verified(&bytes)
        .map_err(|e| format!("cannot load design {path}: {e}"))?;
    println!("{}", db.stats());
    let run_ilp = arg_flag(args, "--ilp");
    let ilp_limit = arg_value(args, "--ilp-time-limit")
        .and_then(|v| v.parse().ok())
        .unwrap_or(30.0);
    let mut mismatches = Vec::new();
    for entry in &db.entries {
        let pre = &entry.pre;
        let tag = format!("{:?} beta={:.4}", entry.granularity, pre.beta);
        let sol = match TwoPassHeuristic::default().solve(pre) {
            Ok(sol) => sol,
            Err(FbbError::Uncompensable { .. }) => {
                println!("  {tag:<24} uncompensable (oracle skipped)");
                continue;
            }
            Err(e) => return Err(CliError::Failure(format!("{tag}: {e}"))),
        };
        if let Err(k) = check_timing(pre, &sol.assignment) {
            mismatches.push(format!("{tag}: heuristic violates timing on path {k}"));
        }
        let recomputed = pre.leakage_nw(&sol.assignment);
        if recomputed.to_bits() != sol.leakage_nw.to_bits() {
            mismatches.push(format!(
                "{tag}: leakage mismatch (reported {} nW, recomputed {recomputed} nW)",
                sol.leakage_nw
            ));
        }
        let used = Preprocessed::cluster_count(&sol.assignment);
        if used > pre.max_clusters {
            mismatches
                .push(format!("{tag}: {used} clusters exceed budget {}", pre.max_clusters));
        }
        let mut ilp_note = String::new();
        if run_ilp {
            let out = IlpAllocator::with_time_limit(Duration::from_secs_f64(ilp_limit))
                .solve(pre)
                .map_err(|e| CliError::Failure(format!("{tag}: {e}")))?;
            if let (Some(exact), true) = (&out.solution, out.proven_optimal) {
                if sol.leakage_nw < exact.leakage_nw - 1e-6 {
                    mismatches.push(format!(
                        "{tag}: heuristic ({} nW) beats proven ILP optimum ({} nW)",
                        sol.leakage_nw, exact.leakage_nw
                    ));
                }
                ilp_note = format!("  ilp optimum {:>9.1} nW", exact.leakage_nw);
            } else {
                ilp_note = "  ilp budget expired (skipped)".to_owned();
            }
        }
        println!(
            "  {tag:<24} heuristic {:>9.1} nW, {} clusters <= {}{ilp_note}",
            sol.leakage_nw, used, pre.max_clusters
        );
    }
    fbb::telemetry::counter("cli_difftest_db_runs", 1);
    if mismatches.is_empty() {
        println!("difftest --db: {} entr{} clean", db.entries.len(), {
            if db.entries.len() == 1 {
                "y"
            } else {
                "ies"
            }
        });
        Ok(())
    } else {
        for m in &mismatches {
            eprintln!("mismatch: {m}");
        }
        Err(CliError::Mismatch(format!(
            "difftest --db {path}: {} mismatch(es) over {} entries",
            mismatches.len(),
            db.entries.len()
        )))
    }
}

/// `fbb lint` — the two-layer static-analysis pass (see `DESIGN.md` §5g).
///
/// Default mode lints the workspace source tree with the `fbb-audit` rule
/// engine; any unwaived finding exits 5. `--deep` arms the parser /
/// call-graph rules FA007–FA011 (trust-boundary panic-reachability, codec
/// casts/indexing, condvar discipline, spec-constant drift) driven by
/// `audit.toml` and the spec docs. `--fixtures` lints the planted
/// violation files instead (deep rules always armed) — that run must
/// *fail* (exit 5) with every rule firing, which is how
/// `scripts/check.sh` proves the analyzer still bites (exit 1 if a rule
/// has gone blind). `--list-rules` and `--explain RULE` print the rule
/// table and its per-rule documentation. `--models` switches to Layer 2: it
/// builds the FBB ILP for the Table 1 designs at β ∈ {5 %, 10 %} and runs
/// `Model::audit` plus the Eq. 1–5 structure audit on each, exiting 5 on
/// any structural error.
fn lint(args: &[String]) -> Result<(), CliError> {
    if arg_flag(args, "--models") {
        return lint_models(args);
    }
    if arg_flag(args, "--list-rules") {
        for r in &fbb::audit::RULES {
            println!("{}  {}{}", r.id, r.title, if r.deep { "  [deep]" } else { "" });
        }
        return Ok(());
    }
    if let Some(id) = arg_value(args, "--explain") {
        let wanted = id.to_ascii_uppercase();
        let Some(r) = fbb::audit::rule(&wanted) else {
            return Err(CliError::Failure(format!(
                "unknown rule `{id}` (see `fbb lint --list-rules`)"
            )));
        };
        println!("{} — {}{}\n", r.id, r.title, if r.deep { " (deep pass)" } else { "" });
        println!("{}\n", r.doc);
        println!("example:");
        for line in r.example.lines() {
            println!("    {}", line.trim_start());
        }
        println!("\nfix: {}", r.hint);
        return Ok(());
    }
    let root = match arg_value(args, "--root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => find_workspace_root()?,
    };
    let fixtures = arg_flag(args, "--fixtures");
    let report = if fixtures {
        fbb::audit::audit_fixtures(&root)
    } else if arg_flag(args, "--deep") {
        fbb::audit::audit_workspace_deep(&root)
    } else {
        fbb::audit::audit_workspace(&root)
    }
    .map_err(|e| CliError::Failure(format!("lint: {e}")))?;

    if arg_flag(args, "--json") {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.summary());
    }
    fbb::telemetry::counter("cli_lint_runs", 1);

    if fixtures {
        // The fixtures exist to prove every rule still fires. A silent rule
        // is an analyzer regression — worse than a violation, so it gets
        // exit 1, not 5.
        let fired = report.rules_fired();
        let blind: Vec<&str> = fbb::audit::RULES
            .iter()
            .map(|r| r.id)
            .filter(|id| !fired.contains(id))
            .collect();
        if !blind.is_empty() {
            return Err(CliError::Failure(format!(
                "analyzer regression: rule(s) {} produced no findings on the fixtures",
                blind.join(", ")
            )));
        }
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(CliError::LintViolations(format!(
            "fbb lint: {} violation(s) in {} file(s)",
            report.violations().count(),
            report.files_scanned
        )))
    }
}

/// Walks up from the current directory to the enclosing Cargo workspace
/// root (the directory whose `Cargo.toml` has a `[workspace]` section).
fn find_workspace_root() -> Result<std::path::PathBuf, CliError> {
    let start = std::env::current_dir()
        .map_err(|e| CliError::Failure(format!("cannot resolve current dir: {e}")))?;
    let mut dir = start.as_path();
    loop {
        if std::fs::read_to_string(dir.join("Cargo.toml"))
            .map(|t| t.contains("[workspace]"))
            .unwrap_or(false)
        {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(CliError::Failure(format!(
                    "no Cargo workspace found above {} (pass --root)",
                    start.display()
                )))
            }
        }
    }
}

/// `fbb lint --models` — Layer-2 smoke over the paper suite.
fn lint_models(args: &[String]) -> Result<(), CliError> {
    let designs: Vec<String> = match arg_value(args, "--designs") {
        Some(v) => v.split(',').map(str::to_owned).collect(),
        None => suite::PAPER_TABLE1.iter().map(|s| s.name.to_owned()).collect(),
    };
    let clusters: usize =
        arg_value(args, "--clusters").and_then(|v| v.parse().ok()).unwrap_or(3);
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for name in &designs {
        let design = fbb::bench::prepare_design(name);
        for beta in [0.05f64, 0.10] {
            let pre = design.preprocess(beta, clusters);
            let model = IlpAllocator::default()
                .build_model(&pre)
                .map_err(|e| CliError::Failure(format!("{name}: {e}")))?;
            let audit = model.audit();
            let structure = IlpAllocator::audit_structure(&pre, &model);
            let n_err = audit.errors().count() + structure.len();
            let n_warn = audit.warnings().count();
            errors += n_err;
            warnings += n_warn;
            println!(
                "{name:<14} beta={:>2.0}%  {:>6} vars {:>6} rows  {} error(s), {} warning(s)",
                beta * 100.0,
                model.var_count(),
                model.constraint_count(),
                n_err,
                n_warn
            );
            for d in audit.defects.iter().filter(|d| {
                matches!(d.severity, fbb::lp::Severity::Error)
            }) {
                eprintln!("  model error [{}]: {}", d.code, d.message);
            }
            for issue in &structure {
                eprintln!("  structure error: {issue}");
            }
        }
    }
    println!(
        "model audit: {} design(s) x 2 betas, {errors} error(s), {warnings} warning(s)",
        designs.len()
    );
    if errors == 0 {
        Ok(())
    } else {
        Err(CliError::LintViolations(format!(
            "fbb lint --models: {errors} model-audit error(s)"
        )))
    }
}

fn generate(args: &[String]) -> Result<(), String> {
    let design = arg_value(args, "--design").ok_or("missing --design")?;
    let nl = if let Some(nl) = suite::generate(&design) {
        nl
    } else if let Some((kind, w)) = design.split_once(':') {
        let w: u32 = w.parse().map_err(|_| format!("bad width in {design}"))?;
        match kind {
            "adder" => fbb::netlist::generators::ripple_adder(&design, w, false),
            "multiplier" => fbb::netlist::generators::array_multiplier(&design, w),
            "alu" => fbb::netlist::generators::alu(&design, w),
            other => return Err(format!("unknown generator {other}")),
        }
        .map_err(|e| e.to_string())?
    } else {
        return Err(format!(
            "unknown design {design}; use a Table 1 name or adder:W / multiplier:W / alu:W"
        ));
    };
    eprintln!("{}", nl.stats());
    match arg_value(args, "--out") {
        Some(path) => save_netlist(&nl, &path)?,
        None => print!("{}", nl_fmt::to_string(&nl)),
    }
    Ok(())
}

fn sta(args: &[String]) -> Result<(), CliError> {
    let path = arg_value(args, "--netlist").ok_or("missing --netlist")?;
    let beta: f64 = arg_value(args, "--beta").and_then(|v| v.parse().ok()).unwrap_or(0.0);

    // From a compiled database the report comes straight from the stored
    // timing tables (the exact jittered STA input and its extracted paths);
    // from a text netlist it is recomputed with unjittered library delays,
    // matching the historical `fbb sta` behaviour.
    let bytes = read_design_bytes(&path)?;
    let (stats, dcrit, mut paths) = if is_design_db(&bytes) {
        let db = DesignDb::decode_fast(&bytes)
            .map_err(|e| format!("cannot load design {path}: {e}"))?;
        println!("compiled database: {}", db.stats());
        (db.netlist.stats(), db.timing.dcrit_ps, db.timing.paths.clone())
    } else {
        let text = String::from_utf8(bytes).map_err(|_| format!("{path}: not a text netlist"))?;
        let nl = if path.ends_with(".bench") {
            bench_fmt::from_bench_str(&text).map_err(|e| format!("{path}: {e}"))?
        } else {
            nl_fmt::from_str(&text).map_err(|e| format!("{path}: {e}"))?
        };
        let library = Library::date09_45nm();
        let chara = library.characterize(
            &BodyBiasModel::date09_45nm(),
            &BiasLadder::date09().map_err(|e| e.to_string())?,
        );
        let delays: Vec<f64> = nl.gates().iter().map(|g| chara.delay_ps(g.cell, 0)).collect();
        let graph = TimingGraph::new(&nl).map_err(|e| e.to_string())?;
        let analysis = graph.analyze(&delays);
        (nl.stats(), analysis.dcrit_ps(), analysis.critical_path_set())
    };
    println!("{stats}");
    println!("Dcrit = {dcrit:.1} ps");
    paths.sort_by(|a, b| b.delay_ps.partial_cmp(&a.delay_ps).expect("finite"));
    println!("unique worst paths: {}", paths.len());
    if beta > 0.0 {
        let violating = paths.iter().filter(|p| p.delay_ps * (1.0 + beta) > dcrit).count();
        println!(
            "at beta = {:.1}%: {violating} paths violate (the allocator's constraint count)",
            beta * 100.0
        );
    }
    println!("\ntop paths:");
    for p in paths.iter().take(5) {
        println!(
            "  {:>8.1} ps  {:>3} gates  slack {:>7.1} ps",
            p.delay_ps,
            p.len(),
            dcrit - p.delay_ps
        );
    }
    Ok(())
}

/// `fbb compile` — run the pre-LP pipeline once and persist every artifact
/// (netlist, placement, characterization inputs, STA tables, pre-processed
/// problems) to a versioned `.fbb` design database.
fn compile(args: &[String]) -> Result<(), CliError> {
    let out = arg_value(args, "-o")
        .or_else(|| arg_value(args, "--out"))
        .ok_or("missing -o FILE.fbb")?;
    let (netlist, source) = if let Some(path) = arg_value(args, "--netlist") {
        (load_netlist(&path)?, format!("netlist {path}"))
    } else if let Some(name) = arg_value(args, "--design") {
        let nl = if let Some(nl) = suite::generate(&name) {
            nl
        } else if let Some((kind, w)) = name.split_once(':') {
            let w: u32 = w.parse().map_err(|_| format!("bad width in {name}"))?;
            match kind {
                "adder" => fbb::netlist::generators::ripple_adder(&name, w, false),
                "multiplier" => fbb::netlist::generators::array_multiplier(&name, w),
                "alu" => fbb::netlist::generators::alu(&name, w),
                other => return Err(format!("unknown generator {other}").into()),
            }
            .map_err(|e| e.to_string())?
        } else {
            return Err(format!(
                "unknown design {name}; use a Table 1 name or adder:W / multiplier:W / alu:W"
            )
            .into());
        };
        (nl, format!("generated {name}"))
    } else {
        return Err("missing --design or --netlist".into());
    };

    let betas: Vec<f64> = match arg_value(args, "--betas") {
        Some(list) => {
            let mut parsed = Vec::new();
            for item in list.split(',') {
                parsed.push(
                    item.trim()
                        .parse::<f64>()
                        .map_err(|_| format!("bad beta {item:?} in --betas"))?,
                );
            }
            parsed
        }
        None => vec![0.05, 0.10],
    };
    let granularities: Vec<Granularity> = match arg_value(args, "--granularity") {
        Some(list) => {
            let mut parsed = Vec::new();
            for item in list.split(',') {
                parsed.push(match item.trim() {
                    "block" => Granularity::Block,
                    "row" => Granularity::Row,
                    "gate" => Granularity::Gate,
                    other => return Err(format!("unknown granularity {other:?}").into()),
                });
            }
            parsed
        }
        None => vec![Granularity::Row],
    };
    let clusters: usize =
        arg_value(args, "--clusters").and_then(|v| v.parse().ok()).unwrap_or(3);

    let library = Library::date09_45nm();
    let mut options = PlacerOptions::default();
    if let Some(rows) = arg_value(args, "--rows").and_then(|v| v.parse().ok()) {
        options.target_rows = Some(rows);
    }
    let placement =
        Placer::new(options).place(&netlist, &library).map_err(|e| e.to_string())?;
    let chara = library.characterize(
        &BodyBiasModel::date09_45nm(),
        &BiasLadder::date09().map_err(|e| e.to_string())?,
    );
    eprintln!("{}", netlist.stats());
    eprintln!("{}", placement.stats());

    let db = DesignDb::build(&source, &netlist, &placement, &chara, &betas, &granularities, clusters)
        .map_err(classify_fbb_error)?;
    let bytes = db.encode_to_vec();
    std::fs::write(&out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
    fbb::telemetry::counter("cli_compile_runs", 1);
    println!("compiled {}", db.stats());
    println!("{} bytes -> {out} (format v{})", bytes.len(), fbb::db::FORMAT_VERSION);
    Ok(())
}

fn solve(args: &[String]) -> Result<(), CliError> {
    let path = arg_value(args, "--netlist").ok_or("missing --netlist")?;
    let beta: f64 = arg_value(args, "--beta").and_then(|v| v.parse().ok()).unwrap_or(0.05);
    let clusters: usize =
        arg_value(args, "--clusters").and_then(|v| v.parse().ok()).unwrap_or(3);
    let design = load_design(args, &path)?;
    let (nl, placement, chara) = (&design.netlist, &design.placement, &design.chara);
    let ladder = chara.ladder().clone();
    eprintln!("{}", nl.stats());
    eprintln!("{}", placement.stats());

    // A compiled database skips straight to the LP: the pre-processed
    // problem is looked up by (granularity, β) and the cluster budget is
    // overridden — pre-processing never reads it, so the override is exact.
    let cached = design
        .db
        .as_ref()
        .and_then(|db| db.preprocessed_for(Granularity::Row, beta, clusters));
    let pre = match cached {
        Some(pre) => {
            eprintln!("pre-processed instance loaded from database (beta {beta})");
            pre
        }
        None => {
            if let Some(db) = &design.db {
                eprintln!(
                    "note: beta {beta} not compiled in (available: {:?}); pre-processing from stored artifacts",
                    db.betas(Granularity::Row)
                );
            }
            FbbProblem::new(nl, placement, chara, beta, clusters)
                .map_err(|e| e.to_string())?
                .preprocess()
                .map_err(|e| e.to_string())?
        }
    };
    println!(
        "Dcrit = {:.1} ps, beta = {:.1}%, {} constraints, C <= {clusters}",
        pre.dcrit_ps,
        beta * 100.0,
        pre.constraint_count()
    );

    let baseline = single_bb(&pre).map_err(classify_fbb_error)?;
    println!(
        "\nsingle BB : level {:>2} everywhere            leakage {:>9.1} nW",
        baseline.assignment[0], baseline.leakage_nw
    );

    let mut sol = TwoPassHeuristic::default().solve(&pre).map_err(classify_fbb_error)?;
    if let Some(pct) = arg_value(args, "--cleanup").and_then(|v| v.parse::<f64>().ok()) {
        let raised = sol.reduce_well_separations(&pre, pct);
        eprintln!("cleanup raised {raised} rows (budget {pct}%)");
    }
    println!(
        "heuristic : {} clusters, {} well seps    leakage {:>9.1} nW  ({:.2}% saved)",
        sol.clusters,
        sol.well_separation_count(),
        sol.leakage_nw,
        sol.savings_vs(&baseline)
    );

    if arg_flag(args, "--ilp") {
        let limit = arg_value(args, "--ilp-time-limit")
            .and_then(|v| v.parse().ok())
            .unwrap_or(120.0);
        let out = IlpAllocator::with_time_limit(Duration::from_secs_f64(limit))
            .solve(&pre)
            .map_err(classify_fbb_error)?;
        // Status wording is part of the CLI contract: the word "optimal"
        // appears if and only if the branch & bound *proved* optimality. A
        // limited solve reports its incumbent and residual gap instead.
        match (&out.solution, out.proven_optimal) {
            (Some(exact), true) => println!(
                "ilp       : optimal (proven), {} clusters, {} well seps    leakage {:>9.1} nW  ({:.2}% saved, {} nodes)",
                exact.clusters,
                exact.well_separation_count(),
                exact.leakage_nw,
                exact.savings_vs(&baseline),
                out.nodes
            ),
            (Some(exact), false) => println!(
                "ilp       : time limit hit, best incumbent with gap {:.2}%, {} clusters    leakage {:>9.1} nW  ({:.2}% saved, {} nodes)",
                out.gap * 100.0,
                exact.clusters,
                exact.leakage_nw,
                exact.savings_vs(&baseline),
                out.nodes
            ),
            (None, _) => println!("ilp       : no solution within the time limit"),
        }
        if arg_flag(args, "--require-optimal") && !out.proven_optimal {
            return Err(CliError::BudgetExpired(format!(
                "deadline: ILP budget ({limit}s) expired without an optimality proof (gap {})",
                if out.gap.is_finite() {
                    format!("{:.2}%", out.gap * 100.0)
                } else {
                    "unbounded".to_owned()
                }
            )));
        }
    }

    print!("\nrow biases: ");
    for (row, &level) in sol.assignment.iter().enumerate() {
        if row % 8 == 0 {
            print!("\n  ");
        }
        print!("r{row:<3}={:<6} ", ladder.level(level).to_string());
    }
    println!();

    if arg_flag(args, "--layout") {
        let art = layout::render_ascii(placement, &ladder, &sol.assignment, &LayoutOptions::default())
            .map_err(|e| e.to_string())?;
        println!("\n{art}");
    }

    fbb::telemetry::record("cli_solution_leakage_nw", sol.leakage_nw);
    fbb::telemetry::record("cli_solution_savings_pct", sol.savings_vs(&baseline));

    // Independent verification: apply the biases to the degraded die and
    // re-time. Seeding the incremental engine with the degraded delays and
    // invalidating only the biased rows exercises the cone-limited re-timing
    // path, which is bit-identical to a from-scratch analyze of the tuned
    // delays.
    let graph = TimingGraph::new(nl).map_err(|e| e.to_string())?;
    let degraded: Vec<f64> =
        nl.gates().iter().map(|g| chara.delay_ps(g.cell, 0) * (1.0 + beta)).collect();
    let row_of: Vec<usize> =
        (0..nl.gate_count()).map(|i| placement.row_of(GateId::from_index(i)).index()).collect();
    let mut inc = IncrementalSta::with_rows(&graph, &degraded, RowMap::new(&row_of));
    let mut dirty_rows = Vec::new();
    {
        let delays = inc.delays_mut();
        for (i, &base) in degraded.iter().enumerate() {
            let tuned = base * (1.0 - chara.speedup_fraction(sol.assignment[row_of[i]]));
            if tuned.to_bits() != delays[i].to_bits() {
                delays[i] = tuned;
                dirty_rows.push(row_of[i]);
            }
        }
    }
    dirty_rows.sort_unstable();
    dirty_rows.dedup();
    inc.invalidate_rows(&dirty_rows);
    let tuned_dcrit = inc.retime();
    println!(
        "verification: biased degraded Dcrit = {:.1} ps vs target {:.1} ps ({}; retimed {} nodes)",
        tuned_dcrit,
        pre.dcrit_ps,
        if tuned_dcrit <= pre.dcrit_ps * 1.002 { "met" } else { "VIOLATED" },
        inc.last_retimed_nodes()
    );

    // Monte-Carlo yield of the uncompensated die population. On by default
    // (32 dies) when telemetry is collected, opt-in via --mc otherwise.
    let mc_samples: usize = arg_value(args, "--mc")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if fbb::telemetry::is_enabled() { 32 } else { 0 });
    if mc_samples > 0 {
        let nominal: Vec<f64> =
            nl.gates().iter().map(|g| chara.delay_ps(g.cell, 0)).collect();
        let mc = MonteCarloYield::new(nl, placement, &nominal);
        let est = mc
            .estimate(&ProcessVariation::slow_corner_45nm(), pre.dcrit_ps, mc_samples, 42)
            .map_err(|e| e.to_string())?;
        println!(
            "monte carlo : {} dies at clock {:.1} ps: yield {:.1}%, beta mean {:.2}% / p95 {:.2}%",
            est.samples,
            pre.dcrit_ps,
            est.yield_fraction * 100.0,
            est.beta_mean * 100.0,
            est.beta_p95 * 100.0
        );
    }
    Ok(())
}

/// `fbb serve` — run the allocation daemon until drained.
///
/// Prints one `fbb-serve listening on ADDR` line to stdout (flushed before
/// serving) so scripts can discover an ephemeral port, then blocks in the
/// accept loop. SIGTERM/SIGINT or a SHUTDOWN frame trigger a graceful
/// drain: queued solves are answered, then the process exits 0.
fn serve(args: &[String]) -> Result<(), CliError> {
    let config = ServeConfig {
        addr: arg_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7117".to_owned()),
        workers: arg_value(args, "--workers").and_then(|v| v.parse().ok()).unwrap_or(0),
        cache_designs: arg_value(args, "--cache-designs")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        queue_depth: arg_value(args, "--queue-depth").and_then(|v| v.parse().ok()).unwrap_or(0),
    };
    fbb::serve::install_signal_handlers();
    let server =
        Server::bind(&config).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    println!(
        "fbb-serve listening on {} ({} workers)",
        server.local_addr(),
        config.resolved_workers()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| CliError::Failure(format!("serve: {e}")))?;
    eprintln!("fbb-serve: drained cleanly");
    Ok(())
}

/// Parses a comma-separated list flag (`--betas 0.03,0.05`), with a
/// default when absent.
fn arg_list<T: std::str::FromStr + Clone>(
    args: &[String],
    flag: &str,
    default: &[T],
) -> Result<Vec<T>, CliError> {
    match arg_value(args, flag) {
        None => Ok(default.to_vec()),
        Some(list) => list
            .split(',')
            .map(|item| {
                item.trim()
                    .parse::<T>()
                    .map_err(|_| CliError::Failure(format!("bad value {item:?} in {flag}")))
            })
            .collect(),
    }
}

/// `fbb sweep` — run the β × C × P grid over one design as a warm
/// pipeline (see `fbb::core::sweep`), streaming one line per cell.
fn sweep(args: &[String]) -> Result<(), CliError> {
    let rows: u32 = arg_value(args, "--rows").and_then(|v| v.parse().ok()).unwrap_or(64);
    let (netlist, placement, chara);
    if let Some(gates) = arg_value(args, "--compose") {
        let target: usize =
            gates.parse().map_err(|_| format!("bad gate count in --compose {gates}"))?;
        let composed = fbb::netlist::compose("composed", &fbb::netlist::ComposeOptions::with_target(target))
            .map_err(|e| e.to_string())?;
        eprintln!(
            "composed {} gates in {} blocks ({} stitches)",
            composed.netlist.gate_count(),
            composed.blocks.len(),
            composed.stitch_gates.len()
        );
        let library = Library::date09_45nm();
        placement = fbb::placement::tile(&composed.netlist, &library, rows)
            .map_err(|e| e.to_string())?;
        chara = library.characterize(
            &BodyBiasModel::date09_45nm(),
            &BiasLadder::date09().map_err(|e| e.to_string())?,
        );
        netlist = composed.netlist;
    } else if let Some(path) = arg_value(args, "--netlist") {
        let design = load_design(args, &path)?;
        netlist = design.netlist;
        placement = design.placement;
        chara = design.chara;
    } else if let Some(name) = arg_value(args, "--design") {
        let nl = suite::generate(&name)
            .ok_or_else(|| format!("unknown design {name}; use a Table 1 name"))?;
        let library = Library::date09_45nm();
        placement = Placer::new(PlacerOptions::default())
            .place(&nl, &library)
            .map_err(|e| e.to_string())?;
        chara = library.characterize(
            &BodyBiasModel::date09_45nm(),
            &BiasLadder::date09().map_err(|e| e.to_string())?,
        );
        netlist = nl;
    } else {
        return Err("missing --design, --netlist, or --compose".into());
    }

    let grid = fbb::core::SweepGrid {
        betas: arg_list(args, "--betas", &[0.03, 0.05])?,
        clusters: arg_list(args, "--clusters", &[2, 3])?,
        levels: arg_list(args, "--levels", &[6, 11])?,
    };
    let options = fbb::core::SweepOptions {
        time_limit: arg_value(args, "--time-limit")
            .and_then(|v| v.parse::<f64>().ok())
            .map(Duration::from_secs_f64),
        node_limit: arg_value(args, "--node-limit").and_then(|v| v.parse().ok()),
        cold: arg_flag(args, "--cold"),
    };
    println!(
        "sweeping {} cells over {} ({} rows, {} mode)",
        grid.cell_count(),
        netlist.name(),
        placement.row_count(),
        if options.cold { "cold" } else { "warm" }
    );
    println!("{:>6}  {:>4}  {:>4}  {:<10}  {:>14}  {:>7}  {:>10}", "beta", "C", "P", "status", "leakage_nw", "nodes", "ms");
    let report = fbb::core::run_sweep(&netlist, &placement, &chara, &grid, &options, |cell| {
        println!(
            "{:>6.3}  {:>4}  {:>4}  {:<10}  {:>14.4}  {:>7}  {:>10.2}",
            cell.beta,
            cell.clusters,
            cell.levels,
            format!("{:?}", cell.status),
            cell.leakage_nw,
            cell.nodes,
            cell.runtime.as_secs_f64() * 1e3,
        );
    })
    .map_err(classify_fbb_error)?;
    println!(
        "swept {} cells in {:.2} s: {} pre-processes, {} model builds, {} pruned",
        report.cells.len(),
        report.runtime.as_secs_f64(),
        report.preprocess_count,
        report.model_builds,
        report.pruned
    );
    if let Some(path) = arg_value(args, "--report") {
        write_sweep_report(&report, &path)?;
        eprintln!("report written to {path}");
    }
    Ok(())
}

/// Writes a sweep report as JSON (hand-formatted — the workspace has no
/// JSON serializer dependency; same approach as the telemetry snapshot).
fn write_sweep_report(report: &fbb::core::SweepReport, path: &str) -> Result<(), CliError> {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"runtime_s\": {},\n", report.runtime.as_secs_f64()));
    out.push_str(&format!("  \"preprocess_count\": {},\n", report.preprocess_count));
    out.push_str(&format!("  \"model_builds\": {},\n", report.model_builds));
    out.push_str(&format!("  \"pruned\": {},\n", report.pruned));
    out.push_str("  \"cells\": [\n");
    for (i, c) in report.cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"beta\": {}, \"clusters\": {}, \"levels\": {}, \"status\": \"{:?}\", \
             \"leakage_nw\": {}, \"leakage_bits\": \"{:016x}\", \"nodes\": {}, \"runtime_s\": {}}}{}\n",
            c.beta,
            c.clusters,
            c.levels,
            c.status,
            c.leakage_nw,
            c.leakage_nw.to_bits(),
            c.nodes,
            c.runtime.as_secs_f64(),
            if i + 1 < report.cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).map_err(|e| CliError::Failure(format!("cannot write {path}: {e}")))
}

/// `fbb bench-serve` — drive a daemon with `--connections` concurrent
/// clients × `--requests` warm solves each, and merge latency percentiles,
/// the cache hit/miss split, and the cold-CLI comparison into
/// `BENCH_serve.json`.
///
/// Without `--addr` an in-process daemon on an ephemeral port is spawned
/// and drained afterwards; with `--addr` an external daemon is measured
/// (and left running). The cold baseline is the real thing: child `fbb
/// solve --netlist X.fbb` processes, decode and all, timed end to end.
fn bench_serve(args: &[String]) -> Result<(), CliError> {
    let beta: f64 = arg_value(args, "--beta").and_then(|v| v.parse().ok()).unwrap_or(0.05);
    let clusters: usize =
        arg_value(args, "--clusters").and_then(|v| v.parse().ok()).unwrap_or(3);
    let connections: usize = arg_value(args, "--connections")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(1);
    let requests: usize =
        arg_value(args, "--requests").and_then(|v| v.parse().ok()).unwrap_or(64).max(1);

    // The design under test: a user-supplied compiled database, or a Table
    // 1 design compiled in-process at the requested β.
    let bytes: Vec<u8> = if let Some(path) = arg_value(args, "--netlist") {
        let b = read_design_bytes(&path)?;
        if !is_design_db(&b) {
            return Err(format!(
                "cannot load design {path}: not a compiled database (run fbb compile first)"
            )
            .into());
        }
        b
    } else {
        let name = arg_value(args, "--design").unwrap_or_else(|| "c1355".to_owned());
        let d = fbb::bench::prepare_design(&name);
        DesignDb::build(
            &format!("bench-serve {name}"),
            &d.netlist,
            &d.placement,
            &d.characterization,
            &[beta],
            &[Granularity::Row],
            clusters,
        )
        .map_err(classify_fbb_error)?
        .encode_to_vec()
    };

    // Cold baseline: full CLI round trips (process spawn + decode + solve)
    // through a temp file, median of 3.
    let tmp = std::env::temp_dir().join(format!("fbb-bench-serve-{}.fbb", std::process::id()));
    std::fs::write(&tmp, &bytes)
        .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    let mut cold_ns: Vec<u64> = Vec::new();
    for _ in 0..3 {
        let sw = Stopwatch::start();
        let status = std::process::Command::new(&exe)
            .arg("solve")
            .arg("--netlist")
            .arg(&tmp)
            .args(["--beta", &beta.to_string(), "--clusters", &clusters.to_string()])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .map_err(|e| format!("cannot spawn cold solve: {e}"))?;
        if !status.success() {
            let _ = std::fs::remove_file(&tmp);
            return Err(format!("cold `fbb solve` baseline failed ({status})").into());
        }
        cold_ns.push(sw.runtime().as_nanos() as u64);
    }
    let _ = std::fs::remove_file(&tmp);
    cold_ns.sort_unstable();
    let cold_median_ns = cold_ns[cold_ns.len() / 2];

    // The daemon: external via --addr, or in-process on an ephemeral port.
    let mut inproc = None;
    let addr = match arg_value(args, "--addr") {
        Some(addr) => addr,
        None => {
            let server = Server::bind(&ServeConfig::default())
                .map_err(|e| format!("cannot bind in-process server: {e}"))?;
            let addr = server.local_addr().to_string();
            let handle = server.shutdown_handle();
            let join = std::thread::spawn(move || server.run());
            inproc = Some((handle, join));
            addr
        }
    };

    let run_bench = || -> Result<(Vec<u64>, u64, u64), CliError> {
        let mut control = Client::connect(&addr)
            .map_err(|e| CliError::Failure(format!("cannot connect to {addr}: {e}")))?;
        let stat = |pairs: &[(String, u64)], key: &str| {
            pairs.iter().find(|(k, _)| k == key).map(|&(_, v)| v).unwrap_or(0)
        };
        let before = control.stats().map_err(|e| format!("stats: {e}"))?;

        let mut latencies: Vec<u64> = Vec::with_capacity(connections * requests);
        let worker_results: Vec<Result<Vec<u64>, String>> =
            std::thread::scope(|scope| {
                let bytes = &bytes;
                let addr = &addr;
                let handles: Vec<_> = (0..connections)
                    .map(|_| {
                        scope.spawn(move || -> Result<Vec<u64>, String> {
                            let mut client =
                                Client::connect(addr).map_err(|e| e.to_string())?;
                            let info =
                                client.load_bytes(bytes).map_err(|e| e.to_string())?;
                            let mut lats = Vec::with_capacity(requests);
                            for _ in 0..requests {
                                let sw = Stopwatch::start();
                                client
                                    .solve(SolveRequest {
                                        design_hash: info.design_hash,
                                        granularity: 1, // row
                                        beta,
                                        clusters: clusters as u64,
                                        budget_ms: 0,
                                        flags: 0,
                                    })
                                    .map_err(|e| e.to_string())?;
                                lats.push(sw.runtime().as_nanos() as u64);
                            }
                            Ok(lats)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("bench connection thread panicked"))
                    .collect()
            });
        for result in worker_results {
            latencies
                .extend(result.map_err(|e| CliError::Failure(format!("bench client: {e}")))?);
        }
        let after = control.stats().map_err(|e| format!("stats: {e}"))?;
        let hits = stat(&after, "cache_hits").saturating_sub(stat(&before, "cache_hits"));
        let misses =
            stat(&after, "cache_misses").saturating_sub(stat(&before, "cache_misses"));
        Ok((latencies, hits, misses))
    };
    let bench_result = run_bench();

    // Drain the in-process daemon even on bench failure.
    if let Some((handle, join)) = inproc {
        handle.shutdown();
        join.join()
            .map_err(|_| CliError::Failure("in-process server panicked".to_owned()))?
            .map_err(|e| CliError::Failure(format!("in-process server: {e}")))?;
    }
    let (mut latencies, hits, misses) = bench_result?;

    latencies.sort_unstable();
    let total = latencies.len();
    let pct = |p: usize| latencies[(total - 1) * p / 100];
    let (p50, p99) = (pct(50), pct(99));
    let mean = latencies.iter().sum::<u64>() / total as u64;
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    let speedup = cold_median_ns as f64 / p50 as f64;

    println!("bench-serve: {connections} connections x {requests} requests = {total} solves");
    println!("  warm latency        p50 {p50:>10} ns   p99 {p99:>10} ns   mean {mean:>10} ns");
    println!("  cold CLI round trip     {cold_median_ns:>10} ns   (median of {})", cold_ns.len());
    println!("  p50 speedup vs CLI  {speedup:>14.2}x");
    println!("  design cache        {hits} hits / {misses} misses  (hit rate {:.3})", hit_rate);

    let path = fbb::bench::report::workspace_file("BENCH_serve.json");
    let mut report = BenchReport::load(&path);
    report.set("serve_connections", connections as f64);
    report.set("serve_requests_total", total as f64);
    report.set("serve_warm_p50_ns", p50 as f64);
    report.set("serve_warm_p99_ns", p99 as f64);
    report.set("serve_warm_mean_ns", mean as f64);
    report.set("serve_cold_cli_ns", cold_median_ns as f64);
    report.set("serve_p50_speedup_vs_cli", speedup);
    report.set("serve_cache_hits", hits as f64);
    report.set("serve_cache_misses", misses as f64);
    report.set("serve_cache_hit_rate", hit_rate);
    report.save(&path).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!("snapshot merged into {}", path.display());
    fbb::telemetry::counter("cli_bench_serve_runs", 1);
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("{}", err.message());
            ExitCode::from(err.exit_code())
        }
    }
}
